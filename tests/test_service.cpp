// Continuous re-placement service tests: model-delta validation, the
// publish policy, and the daemon end to end.
//
// The Service.GoldenPublishPins fixture freezes the publish/hold decision
// sequence and the final published cost of a fixed drift-event script over
// the six case-study classes. The daemon pipeline is deterministic
// (simplex + deterministic rounding), so the reason strings pin exactly
// and the costs to 1e-9 relative. Regenerate after a DELIBERATE semantic
// change with WANPLACE_PRINT_GOLDEN=1 and paste over kServiceGolden.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/engine.h"
#include "bounds/feasible.h"
#include "instance_helpers.h"
#include "mcperf/heuristic_class.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "service/daemon.h"
#include "service/delta.h"
#include "service/policy.h"
#include "util/check.h"
#include "util/rng.h"

namespace wanplace {
namespace {

constexpr double kTlat = 150;

// ---------------------------------------------------------------------------
// Instance::apply_delta validation: every malformed event must throw
// InvalidArgument and leave the instance untouched.

double demand_sum(const mcperf::Instance& instance) {
  double sum = 0;
  for (std::size_t n = 0; n < instance.node_count(); ++n)
    for (std::size_t i = 0; i < instance.interval_count(); ++i)
      for (std::size_t k = 0; k < instance.object_count(); ++k)
        sum += instance.demand.read(n, i, k) + instance.demand.write(n, i, k);
  return sum;
}

void expect_rejected(mcperf::Instance& instance, const workload::Event& event,
                     double tlat = kTlat) {
  const double before = demand_sum(instance);
  const std::size_t nodes = instance.node_count();
  EXPECT_THROW(instance.apply_delta(event, tlat), InvalidArgument);
  EXPECT_EQ(instance.node_count(), nodes);
  EXPECT_EQ(demand_sum(instance), before);
}

TEST(DeltaValidation, DemandUnknownNode) {
  auto instance = test::random_instance(1);
  expect_rejected(instance, workload::DemandDeltaEvent{99, 0, 0, 1, 0});
  expect_rejected(instance, workload::DemandDeltaEvent{-1, 0, 0, 1, 0});
}

TEST(DeltaValidation, DemandUnknownInterval) {
  auto instance = test::random_instance(1);
  expect_rejected(instance, workload::DemandDeltaEvent{0, 99, 0, 1, 0});
}

TEST(DeltaValidation, DemandUnknownObject) {
  auto instance = test::random_instance(1);
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, 99, 1, 0});
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, -3, 1, 0});
}

TEST(DeltaValidation, DemandNonFinite) {
  auto instance = test::random_instance(1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, 0, nan, 0});
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, 0, 0, inf});
}

TEST(DeltaValidation, DemandCannotGoNegative) {
  auto instance = test::line_instance(4, 2, 2, 0.9);
  instance.demand.read(0, 0, 0) = 2;
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, 0, -5, 0});
  expect_rejected(instance, workload::DemandDeltaEvent{0, 0, 0, 0, -1});
  // A delta down to (numerically) zero is fine and clamps exactly.
  instance.apply_delta(workload::DemandDeltaEvent{0, 0, 0, -2, 0}, kTlat);
  EXPECT_EQ(instance.demand.read(0, 0, 0), 0);
}

TEST(DeltaValidation, TreeInstanceTopologyEvents) {
  graph::TreeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.level_latency_ms = {100, 50};
  Rng rng(3);
  auto instance =
      test::tree_instance(graph::tree(params, rng), 120, 1, 2, 0.9);
  const auto& parent = instance.links->parent;
  // A joiner carries no parent edge, so joins stay rejected on trees.
  expect_rejected(instance, workload::NodeJoinEvent{100, {}}, 120);
  // Membership shrinks from the leaves inward: an interior node (and the
  // root) cannot leave while it still has live children.
  graph::NodeId interior = -1, leaf = -1;
  for (std::size_t n = 1; n < instance.node_count(); ++n) {
    bool has_child = false;
    for (std::size_t m = 0; m < instance.node_count(); ++m)
      if (parent[m] == static_cast<graph::NodeId>(n)) has_child = true;
    (has_child ? interior : leaf) = static_cast<graph::NodeId>(n);
  }
  ASSERT_GE(interior, 0);
  ASSERT_GE(leaf, 0);
  expect_rejected(instance, workload::NodeLeaveEvent{0}, 120);  // root/origin
  expect_rejected(instance, workload::NodeLeaveEvent{interior}, 120);
  // A latency update must re-measure an up-link; a non-adjacent pair (two
  // leaves share no edge) is rejected.
  graph::NodeId other_leaf = -1;
  for (std::size_t n = 1; n < instance.node_count(); ++n)
    if (static_cast<graph::NodeId>(n) != leaf &&
        parent[static_cast<std::size_t>(leaf)] != static_cast<graph::NodeId>(n))
      other_leaf = static_cast<graph::NodeId>(n);
  bool other_is_leaf = true;
  for (std::size_t m = 0; m < instance.node_count(); ++m)
    if (parent[m] == other_leaf) other_is_leaf = false;
  if (other_is_leaf)
    expect_rejected(instance, workload::LatencyUpdateEvent{leaf, other_leaf, 80},
                    120);
  // Accepted: re-measure the leaf's up-link (latencies shift by the delta
  // for every pair crossing it), then the leaf itself leaves.
  const auto up = parent[static_cast<std::size_t>(leaf)];
  const double before =
      instance.latencies(static_cast<std::size_t>(leaf), 0);
  const double old_link =
      instance.links->up_latency_ms[static_cast<std::size_t>(leaf)];
  instance.apply_delta(workload::LatencyUpdateEvent{leaf, up, old_link + 30},
                       120);
  EXPECT_NEAR(instance.latencies(static_cast<std::size_t>(leaf), 0),
              before + 30, 1e-12);
  instance.apply_delta(workload::NodeLeaveEvent{leaf}, 120);
  EXPECT_EQ(instance.dist(static_cast<std::size_t>(leaf),
                          static_cast<std::size_t>(leaf)),
            0);
  EXPECT_FALSE(std::isfinite(
      instance.latencies(static_cast<std::size_t>(leaf), 0)));
  // Once every leaf under it is gone, the interior node may leave too.
  for (std::size_t m = 1; m < instance.node_count(); ++m)
    if (parent[m] == interior && instance.dist(m, m) != 0)
      instance.apply_delta(
          workload::NodeLeaveEvent{static_cast<graph::NodeId>(m)}, 120);
  instance.apply_delta(workload::NodeLeaveEvent{interior}, 120);
  EXPECT_EQ(instance.dist(static_cast<std::size_t>(interior),
                          static_cast<std::size_t>(interior)),
            0);
}

TEST(DeltaValidation, JoinNeedsPositiveTlat) {
  auto instance = test::random_instance(2);
  expect_rejected(instance, workload::NodeJoinEvent{100, {}}, 0);
  expect_rejected(instance, workload::LatencyUpdateEvent{0, 1, 80}, -5);
}

TEST(DeltaValidation, JoinBadLatencies) {
  auto instance = test::random_instance(2);
  expect_rejected(instance, workload::NodeJoinEvent{-10, {}});
  expect_rejected(instance, workload::NodeJoinEvent{100, {{99, 50.0}}});
  expect_rejected(instance, workload::NodeJoinEvent{100, {{0, -50.0}}});
}

TEST(DeltaValidation, LeaveUnknownOriginOrDeparted) {
  auto instance = test::random_instance(3);  // origin at node 0
  expect_rejected(instance, workload::NodeLeaveEvent{42});
  expect_rejected(instance, workload::NodeLeaveEvent{0});
  instance.apply_delta(workload::NodeLeaveEvent{2}, kTlat);
  expect_rejected(instance, workload::NodeLeaveEvent{2});  // already left
}

TEST(DeltaValidation, LatencyUpdateBadReferences) {
  auto instance = test::random_instance(4);
  expect_rejected(instance, workload::LatencyUpdateEvent{0, 99, 80});
  expect_rejected(instance, workload::LatencyUpdateEvent{2, 2, 80});
  expect_rejected(instance, workload::LatencyUpdateEvent{0, 1, 0});
  instance.apply_delta(workload::NodeLeaveEvent{3}, kTlat);
  expect_rejected(instance, workload::LatencyUpdateEvent{0, 3, 80});
}

TEST(DeltaValidation, JoinAndLeaveMaintainLiveness) {
  auto instance = test::random_instance(5);
  const std::size_t before = instance.node_count();
  instance.apply_delta(workload::NodeJoinEvent{100, {{0, 60.0}}}, kTlat);
  ASSERT_EQ(instance.node_count(), before + 1);
  const auto fresh = static_cast<graph::NodeId>(before);
  EXPECT_NE(instance.dist(before, before), 0);
  EXPECT_NE(instance.dist(before, 0), 0);  // 60 <= Tlat
  instance.apply_delta(workload::NodeLeaveEvent{fresh}, kTlat);
  EXPECT_EQ(instance.dist(before, before), 0);  // tombstoned, id kept
  EXPECT_EQ(instance.node_count(), before + 1);
}

// ---------------------------------------------------------------------------
// Publish policy unit cases: one per reason string.

TEST(Policy, ReasonsCoverEveryBranch) {
  service::PublishPolicy policy;  // 1% margin, publish on infeasible
  const service::CandidatePlan none{false, 0};
  const service::CandidatePlan cheap{true, 90};
  const service::CandidatePlan close{true, 99.5};
  const service::IncumbentPlan fresh{false, false, 0};
  const service::IncumbentPlan live{true, true, 100};
  const service::IncumbentPlan broken{true, false, 100};

  EXPECT_STREQ(decide(policy, fresh, none).reason, "no-candidate");
  EXPECT_FALSE(decide(policy, fresh, none).publish);
  EXPECT_STREQ(decide(policy, fresh, cheap).reason, "initial");
  EXPECT_STREQ(decide(policy, broken, cheap).reason, "incumbent-infeasible");
  EXPECT_STREQ(decide(policy, live, cheap).reason, "improved");
  EXPECT_STREQ(decide(policy, live, close).reason, "held");

  service::PublishPolicy sticky;
  sticky.publish_on_infeasible = false;
  // Cost gate still applies when infeasible publishing is off.
  EXPECT_STREQ(decide(sticky, broken, cheap).reason, "improved");
  EXPECT_STREQ(decide(sticky, broken, close).reason, "held");

  service::PublishPolicy eager;
  eager.min_relative_gain = 0;
  EXPECT_STREQ(decide(eager, live, close).reason, "improved");
  // Zero margin still demands a STRICT improvement.
  EXPECT_STREQ(decide(eager, live, {true, 100}).reason, "held");
}

// ---------------------------------------------------------------------------
// Daemon end to end.

/// The service golden fixture: the 4-node line of the golden bound tests
/// (origin at node 3) with the same deterministic demand and cost pattern.
mcperf::Instance service_instance() {
  auto instance = test::line_instance(4, 3, 3, 0.6);
  instance.costs.alpha = 1;
  instance.costs.beta = 2;
  instance.costs.delta = 0.25;
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t k = 0; k < 3; ++k) {
        instance.demand.read(n, i, k) =
            static_cast<double>(1 + (n + 2 * i + 3 * k) % 4);
        instance.demand.write(n, i, k) = (n + i + k) % 2 ? 0.5 : 0.0;
      }
  return instance;
}

/// Fixed drift script: demand swings, a latency change, a join, demand on
/// the fresh node, a leave, and a final perturbation.
std::vector<workload::Event> service_events() {
  return {
      workload::DemandDeltaEvent{0, 1, 2, 3.0, 0.0},
      workload::DemandDeltaEvent{2, 0, 0, 5.0, 0.5},
      workload::LatencyUpdateEvent{0, 2, 120.0},
      workload::NodeJoinEvent{100.0, {}},
      workload::DemandDeltaEvent{4, 0, 1, 4.0, 0.0},
      workload::NodeLeaveEvent{1},
      workload::DemandDeltaEvent{0, 2, 1, 2.0, 0.0},
  };
}

service::DaemonOptions daemon_options(mcperf::ClassSpec spec) {
  service::DaemonOptions options;
  options.spec = std::move(spec);
  options.tlat_ms = kTlat;
  return options;
}

TEST(Service, StartPublishesInitialPlan) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  const auto out = daemon.start();
  EXPECT_EQ(out.kind, "start");
  EXPECT_TRUE(out.published);
  EXPECT_EQ(out.reason, "initial");
  EXPECT_TRUE(daemon.has_plan());
  EXPECT_GT(daemon.published_cost(), 0);
  EXPECT_FALSE(out.warm);
}

TEST(Service, RejectedEventLeavesStateUntouched) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  daemon.start();
  const double cost = daemon.published_cost();
  const auto out =
      daemon.on_event(workload::DemandDeltaEvent{99, 0, 0, 1, 0});
  EXPECT_TRUE(out.rejected);
  EXPECT_EQ(out.reason, "rejected");
  EXPECT_FALSE(out.error.empty());
  EXPECT_EQ(daemon.events_seen(), 1u);
  EXPECT_EQ(daemon.published_cost(), cost);
  // The stream keeps flowing after a bad entry.
  const auto next =
      daemon.on_event(workload::DemandDeltaEvent{0, 0, 0, 1, 0});
  EXPECT_FALSE(next.rejected);
}

TEST(Service, IncrementalBoundsMatchColdRebuild) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  daemon.start();
  for (const auto& event : service_events()) {
    const auto out = daemon.on_event(event);
    ASSERT_FALSE(out.rejected);
    const auto cold =
        bounds::compute_bound(daemon.instance(), mcperf::classes::general());
    EXPECT_EQ(out.achievable, cold.achievable);
    if (!out.achievable) continue;
    ASSERT_EQ(out.status, cold.status) << out.kind;
    if (out.status == lp::SolveStatus::Optimal)
      EXPECT_NEAR(out.lower_bound, cold.lower_bound,
                  1e-7 * (1 + std::abs(cold.lower_bound)))
          << out.kind;
  }
}

// The six case-study classes of the selector experiments.
std::vector<mcperf::ClassSpec> service_classes() {
  return {mcperf::classes::general(),
          mcperf::classes::storage_constrained(),
          mcperf::classes::replica_constrained(),
          mcperf::classes::decentralized_local_routing(),
          mcperf::classes::caching(),
          mcperf::classes::cooperative_caching()};
}

struct ServiceGoldenCase {
  const char* name;      // class preset name
  const char* reasons;   // comma-joined decision reasons, start() first
  std::size_t publishes; // publish count over start + 7 events
  double final_cost;     // published cost after the last event (1e-9 rel)
};

constexpr ServiceGoldenCase kServiceGolden[] = {
    {"general",
     "initial,held,held,held,held,held,improved,incumbent-infeasible", 3, 10},
    {"storage-constrained",
     "initial,improved,held,held,held,held,incumbent-infeasible,"
     "incumbent-infeasible",
     4, 21},
    {"replica-constrained", "initial,held,held,held,held,held,held,held", 1,
     16.25},
    {"decentral-local-routing",
     "initial,held,held,held,held,held,incumbent-infeasible,"
     "incumbent-infeasible",
     3, 11},
    {"caching", "initial,held,held,held,held,held,incumbent-infeasible,held",
     2, 61},
    {"coop-caching",
     "initial,held,held,improved,held,held,incumbent-infeasible,held", 3, 21},
};

TEST(Service, GoldenPublishPins) {
  const bool print = std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr;
  const auto classes = service_classes();
  ASSERT_EQ(classes.size(), std::size(kServiceGolden));
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto& g = kServiceGolden[c];
    service::PlacementDaemon daemon(service_instance(),
                                    daemon_options(classes[c]));
    std::string reasons = daemon.start().reason;
    for (const auto& event : service_events()) {
      const auto out = daemon.on_event(event);
      reasons += ",";
      reasons += out.reason;
    }
    if (print) {
      std::printf("    {\"%s\", \"%s\", %zu, %.17g},\n",
                  classes[c].name.c_str(), reasons.c_str(),
                  daemon.publishes(), daemon.published_cost());
      continue;
    }
    EXPECT_EQ(classes[c].name, g.name);
    EXPECT_EQ(reasons, g.reasons) << g.name;
    EXPECT_EQ(daemon.publishes(), g.publishes) << g.name;
    EXPECT_NEAR(daemon.published_cost(), g.final_cost,
                1e-9 * (1 + std::abs(g.final_cost)))
        << g.name;
  }
}

TEST(Service, CountersTrackEventsAndPivotSavings) {
  auto& registry = obs::Registry::global();
  registry.enable(true);
  registry.reset();
  {
    service::PlacementDaemon daemon(
        service_instance(), daemon_options(mcperf::classes::general()));
    daemon.start();
    // Demand-only drift: every event takes the incremental path and the
    // warm dual re-solve needs far fewer pivots than the cold baseline.
    for (int i = 0; i < 5; ++i) {
      const auto out = daemon.on_event(
          workload::DemandDeltaEvent{i % 4, 1, i % 3, 1.5, 0.0});
      ASSERT_FALSE(out.rejected);
      EXPECT_TRUE(out.incremental);
      EXPECT_TRUE(out.warm);
    }
  }
  const auto snapshot = registry.snapshot();
  registry.enable(false);
  const auto sum = [&](const char* name) {
    const auto it = snapshot.find(name);
    return it == snapshot.end() ? 0.0 : it->second.sum;
  };
  EXPECT_EQ(sum("service.events"), 5);
  EXPECT_EQ(sum("service.incremental"), 5);
  EXPECT_EQ(sum("service.rebuilds"), 1);  // the start() build
  EXPECT_EQ(sum("service.publishes") + sum("service.holds"), 6);
  EXPECT_GT(sum("service.pivots_saved"), 0);
}

// The widened incremental window: with gamma > 0 (live route blocks) and
// provisioned SC/RC classes, the whole drift script — joins included —
// delta-patches; the only rebuild of the replay is the start() build.
TEST(Service, WidenedWindowStaysIncremental) {
  const mcperf::ClassSpec specs[] = {mcperf::classes::general(),
                                     mcperf::classes::storage_constrained(),
                                     mcperf::classes::replica_constrained()};
  for (const auto& spec : specs) {
    auto& registry = obs::Registry::global();
    registry.enable(true);
    registry.reset();
    {
      auto instance = service_instance();
      instance.costs.gamma = 0.01;
      service::PlacementDaemon daemon(std::move(instance),
                                      daemon_options(spec));
      daemon.start();
      for (const auto& event : service_events()) {
        const auto out = daemon.on_event(event);
        ASSERT_FALSE(out.rejected) << spec.name << ": " << out.error;
        EXPECT_TRUE(out.incremental) << spec.name << " " << out.kind;
      }
      EXPECT_EQ(daemon.status().rebuilds, 1u) << spec.name;
      EXPECT_EQ(daemon.status().incremental, 7u) << spec.name;
    }
    const auto snapshot = registry.snapshot();
    registry.enable(false);
    const auto rebuilds = snapshot.find("service.rebuilds");
    ASSERT_TRUE(rebuilds != snapshot.end()) << spec.name;
    EXPECT_EQ(rebuilds->second.sum, 1) << spec.name;  // the start() build
  }
}

// Batching: singleton batches replay the drift script bit-for-bit against
// the per-event path (same solves, same decisions, same published plan),
// and folding the script into two batches still lands on the same instance
// and the same certified bound — with one solve per batch instead of one
// per event.
TEST(Service, BatchMatchesSequential) {
  service::PlacementDaemon seq(service_instance(),
                               daemon_options(mcperf::classes::general()));
  service::PlacementDaemon one(service_instance(),
                               daemon_options(mcperf::classes::general()));
  service::PlacementDaemon bat(service_instance(),
                               daemon_options(mcperf::classes::general()));
  seq.start();
  one.start();
  bat.start();
  const auto events = service_events();
  service::EventOutcome last_seq;
  for (const auto& event : events) {
    last_seq = seq.on_event(event);
    const auto folded = one.on_batch(workload::EventBatch{event});
    // A batch of one is the event path with batch accounting: the solve,
    // the audit, and the publish decision are bit-identical.
    EXPECT_EQ(folded.kind, "batch[1]");
    EXPECT_EQ(folded.incremental, last_seq.incremental);
    EXPECT_EQ(folded.lower_bound, last_seq.lower_bound);
    EXPECT_EQ(folded.published, last_seq.published);
    EXPECT_EQ(folded.reason, last_seq.reason);
  }
  ASSERT_EQ(seq.has_plan(), one.has_plan());
  ASSERT_TRUE(seq.has_plan());
  EXPECT_EQ(seq.published_cost(), one.published_cost());
  for (std::size_t n = 0; n < seq.instance().node_count(); ++n)
    for (std::size_t i = 0; i < seq.instance().interval_count(); ++i)
      for (std::size_t k = 0; k < seq.instance().object_count(); ++k)
        EXPECT_EQ(seq.plan()(n, i, k), one.plan()(n, i, k))
            << n << "," << i << "," << k;

  // Folded batches: same instance, same certified bound, fewer solves.
  const auto out1 = bat.on_batch(
      workload::EventBatch(events.begin(), events.begin() + 4));
  const auto out2 =
      bat.on_batch(workload::EventBatch(events.begin() + 4, events.end()));
  EXPECT_EQ(out1.kind, "batch[4]");
  EXPECT_FALSE(out1.rejected);
  EXPECT_TRUE(out1.incremental);
  EXPECT_EQ(out1.index, 4u);
  EXPECT_EQ(out2.kind, "batch[3]");
  EXPECT_EQ(out2.index, 7u);
  const auto& a = seq.instance();
  const auto& b = bat.instance();
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t n = 0; n < a.node_count(); ++n) {
    for (std::size_t m = 0; m < a.node_count(); ++m) {
      EXPECT_EQ(a.dist(n, m), b.dist(n, m));
      EXPECT_EQ(a.latencies(n, m), b.latencies(n, m));
    }
    for (std::size_t i = 0; i < a.interval_count(); ++i)
      for (std::size_t k = 0; k < a.object_count(); ++k) {
        EXPECT_EQ(a.demand.read(n, i, k), b.demand.read(n, i, k));
        EXPECT_EQ(a.demand.write(n, i, k), b.demand.write(n, i, k));
      }
  }
  EXPECT_NEAR(out2.lower_bound, last_seq.lower_bound,
              1e-7 * (1 + std::abs(last_seq.lower_bound)));
  // Per-event accounting with per-batch solves: applied + rejected ==
  // events on every path, but the batched series consumed one point per
  // batch — 2 re-solves for the script instead of 7.
  EXPECT_EQ(bat.status().events, 7u);
  EXPECT_EQ(bat.status().applied, 7u);
  EXPECT_EQ(bat.status().rejected, 0u);
  EXPECT_EQ(bat.events_seen(), seq.events_seen());
  EXPECT_EQ(seq.series().total_appended(), 8u);  // start + 7 events
  EXPECT_EQ(bat.series().total_appended(), 3u);  // start + 2 batches
}

TEST(Service, BatchRejectsAtomically) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  daemon.start();
  const double cost = daemon.published_cost();
  const double before = demand_sum(daemon.instance());
  const double bound = daemon.status().lower_bound;
  const workload::EventBatch batch = {
      workload::DemandDeltaEvent{0, 0, 0, 2.0, 0.0},
      workload::DemandDeltaEvent{99, 0, 0, 1.0, 0.0},  // invalid mid-batch
      workload::DemandDeltaEvent{1, 1, 1, 1.0, 0.0},
  };
  const auto out = daemon.on_batch(batch);
  EXPECT_TRUE(out.rejected);
  EXPECT_EQ(out.kind, "batch[3]");
  EXPECT_EQ(out.index, 3u);
  EXPECT_FALSE(out.error.empty());
  // Nothing moved: the valid events before and after the bad one were
  // rolled back with it (all-or-nothing), and no solve ran.
  EXPECT_EQ(demand_sum(daemon.instance()), before);
  EXPECT_EQ(daemon.published_cost(), cost);
  EXPECT_EQ(daemon.status().lower_bound, bound);
  EXPECT_EQ(daemon.status().events, 3u);
  EXPECT_EQ(daemon.status().rejected, 3u);
  EXPECT_EQ(daemon.status().applied, 0u);
  EXPECT_EQ(daemon.series().total_appended(), 2u);  // start + the reject
  // The stream keeps flowing: the same batch minus the bad event applies.
  const auto next = daemon.on_batch(
      {workload::DemandDeltaEvent{0, 0, 0, 2.0, 0.0},
       workload::DemandDeltaEvent{1, 1, 1, 1.0, 0.0}});
  EXPECT_FALSE(next.rejected);
  EXPECT_EQ(next.index, 5u);
  EXPECT_EQ(daemon.status().applied, 2u);
}

TEST(Service, ChurnSoak) {
  auto instance = test::random_instance(123, 6, 3, 4, 0.85);
  service::PlacementDaemon daemon(
      std::move(instance), daemon_options(mcperf::classes::general()));
  daemon.start();
  Rng rng(2024);
  std::size_t joins = 0;
  for (std::size_t step = 0; step < 40; ++step) {
    // Demand moves at a live node (deltas on departed nodes are rejected).
    std::vector<graph::NodeId> live_nodes;
    for (std::size_t n = 0; n < daemon.instance().node_count(); ++n)
      if (daemon.instance().dist(n, n) != 0)
        live_nodes.push_back(static_cast<graph::NodeId>(n));
    workload::Event event = workload::DemandDeltaEvent{
        live_nodes[rng.uniform_index(live_nodes.size())],
        rng.uniform_index(3),
        static_cast<workload::ObjectId>(rng.uniform_index(4)),
        rng.uniform(0.0, 3.0), rng.bernoulli(0.3) ? 0.5 : 0.0};
    const double roll = rng.uniform();
    if (roll < 0.12 && joins < 4) {
      event = workload::NodeJoinEvent{rng.bernoulli(0.5) ? 100.0 : 200.0,
                                      {{0, 90.0}}};
      ++joins;
    } else if (roll < 0.2) {
      // Leave a random live non-origin node, when one exists.
      const auto& inst = daemon.instance();
      std::vector<graph::NodeId> live;
      for (std::size_t n = 0; n < inst.node_count(); ++n)
        if (inst.dist(n, n) != 0 && !inst.is_origin(n))
          live.push_back(static_cast<graph::NodeId>(n));
      if (live.size() > 2)
        event = workload::NodeLeaveEvent{live[rng.uniform_index(live.size())]};
    } else if (roll < 0.3) {
      const auto n = daemon.instance().node_count();
      const auto a = rng.uniform_index(n);
      const auto b = (a + 1 + rng.uniform_index(n - 1)) % n;
      if (daemon.instance().dist(a, a) != 0 &&
          daemon.instance().dist(b, b) != 0)
        event = workload::LatencyUpdateEvent{
            static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b),
            rng.bernoulli(0.5) ? 80.0 : 220.0};
    }
    const auto out = daemon.on_event(event);
    ASSERT_FALSE(out.rejected) << "step " << step << ": " << out.error;
    ASSERT_FALSE(out.reason.empty());
    // Spot-check the maintained bound against a cold rebuild.
    if (step % 13 == 0) {
      const auto cold =
          bounds::compute_bound(daemon.instance(), mcperf::classes::general());
      EXPECT_EQ(out.achievable, cold.achievable) << "step " << step;
      if (out.achievable && out.status == lp::SolveStatus::Optimal &&
          cold.status == lp::SolveStatus::Optimal)
        EXPECT_NEAR(out.lower_bound, cold.lower_bound,
                    1e-7 * (1 + std::abs(cold.lower_bound)))
            << "step " << step;
    }
  }
  EXPECT_EQ(daemon.events_seen(), 40u);
}

// ---------------------------------------------------------------------------
// Observability: the regret audit, the status snapshot, and the export
// no-perturbation guarantee.

TEST(Service, RegretAuditTracksIncumbentAndBound) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  daemon.start();
  for (const auto& event : service_events()) {
    const auto out = daemon.on_event(event);
    if (out.rejected) continue;
    ASSERT_TRUE(out.audit.exists) << out.kind;
    // The audit's cost must agree with the ground-truth evaluator on the
    // drifted instance. The audit runs before the publish decision, so
    // daemon.plan() is the audited placement only when the event held it.
    if (!out.published) {
      const auto truth = bounds::evaluate_placement(
          daemon.instance(), mcperf::classes::general(), daemon.plan());
      EXPECT_NEAR(out.audit.cost, truth.cost,
                  1e-9 * (1 + std::abs(truth.cost)))
          << out.kind;
      EXPECT_EQ(out.audit.feasible(), truth.feasible()) << out.kind;
      EXPECT_NEAR(out.audit.min_qos, truth.min_qos, 1e-9) << out.kind;
    }
    if (out.audit.bound_certified) {
      EXPECT_NEAR(out.audit.regret, out.audit.cost - out.lower_bound, 1e-12)
          << out.kind;
      // A feasible incumbent can never beat the certified lower bound.
      if (out.audit.feasible())
        EXPECT_GE(out.audit.regret, -1e-7 * (1 + std::abs(out.lower_bound)))
            << out.kind;
    }
  }
}

TEST(Service, StatusSnapshotCountsAppliedAndRejected) {
  service::PlacementDaemon daemon(service_instance(),
                                  daemon_options(mcperf::classes::general()));
  daemon.start();
  daemon.on_event(workload::DemandDeltaEvent{0, 0, 0, 2.0, 0.0});
  daemon.on_event(workload::DemandDeltaEvent{99, 0, 0, 1.0, 0.0});  // bad
  daemon.on_event(workload::DemandDeltaEvent{1, 1, 1, 1.0, 0.0});

  const auto status = daemon.status();
  EXPECT_TRUE(status.has_plan);
  EXPECT_EQ(status.events, 3u);
  EXPECT_EQ(status.applied, 2u);
  EXPECT_EQ(status.rejected, 1u);
  EXPECT_EQ(status.publishes + status.holds, 3u);  // start + 2 applied
  EXPECT_GE(status.rebuilds, 1u);                  // at least the start build
  EXPECT_GT(status.incumbent_cost, 0);
  EXPECT_GT(status.lower_bound, 0);
  EXPECT_NEAR(status.regret, status.incumbent_cost - status.lower_bound,
              1e-12);
  EXPECT_FALSE(status.last_reason.empty());
  // The series consumed one index per event, rejected included.
  EXPECT_EQ(daemon.series().total_appended(), 4u);  // start + 3 events
  const auto points = daemon.series().points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_TRUE(points[2].rejected);
  EXPECT_TRUE(points[2].values.empty());  // no solve happened
  EXPECT_FALSE(points[3].rejected);
}

TEST(Service, BitIdenticalWithExportEnabled) {
  // One replay with telemetry off...
  std::vector<double> plain_bounds, plain_costs;
  {
    service::PlacementDaemon daemon(
        service_instance(), daemon_options(mcperf::classes::general()));
    daemon.start();
    for (const auto& event : service_events()) {
      const auto out = daemon.on_event(event);
      plain_bounds.push_back(out.lower_bound);
      plain_costs.push_back(out.audit.exists ? out.audit.cost : -1);
    }
  }
  // ...and one with the registry live and a full export after every event.
  auto& registry = obs::Registry::global();
  registry.enable(true);
  registry.reset();
  std::vector<double> traced_bounds, traced_costs;
  {
    service::PlacementDaemon daemon(
        service_instance(), daemon_options(mcperf::classes::general()));
    daemon.start();
    for (const auto& event : service_events()) {
      const auto out = daemon.on_event(event);
      traced_bounds.push_back(out.lower_bound);
      traced_costs.push_back(out.audit.exists ? out.audit.cost : -1);
      std::ostringstream sink;
      obs::export_metrics(sink, obs::MetricsFormat::Prometheus,
                          registry.snapshot(), &daemon.series());
      obs::export_metrics(sink, obs::MetricsFormat::Jsonl, registry.snapshot(),
                          &daemon.series());
      EXPECT_FALSE(sink.str().empty());
    }
  }
  registry.enable(false);
  // Exporting only reads telemetry state: solves stay BIT-identical.
  EXPECT_EQ(plain_bounds, traced_bounds);
  EXPECT_EQ(plain_costs, traced_costs);
}

}  // namespace
}  // namespace wanplace
