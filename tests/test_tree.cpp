// Tree-family tests: the hierarchical topology generator, the link-model
// extraction, the closest-routing load audit, and the exact DP certifier
// cross-checked against brute-force subset enumeration on small trees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "bounds/feasible.h"
#include "graph/generators.h"
#include "mcperf/achievability.h"
#include "mcperf/heuristic_class.h"
#include "tree/family.h"
#include "tree/tree_dp.h"
#include "tree_fuzz.h"
#include "util/check.h"

namespace wanplace {
namespace {

using test::fuzz_base_seed;
using test::fuzz_tree_instance;
using test::tree_instance;

graph::Topology make_tree(std::size_t depth, std::size_t fanout,
                          double level_latency = 100,
                          double local_latency = 10) {
  graph::TreeParams params;
  params.depth = depth;
  params.fanout = fanout;
  params.level_latency_ms = {level_latency};
  params.local_latency_ms = local_latency;
  Rng rng(1);
  return graph::tree(params, rng);
}

// ---------------------------------------------------------------------------
// Generator structure.

TEST(TreeGenerator, NodeCountMatchesGeometricSum) {
  EXPECT_EQ(graph::tree_node_count(1, 3), 4u);   // star
  EXPECT_EQ(graph::tree_node_count(2, 2), 7u);
  EXPECT_EQ(graph::tree_node_count(3, 2), 15u);
  EXPECT_EQ(graph::tree_node_count(3, 1), 4u);   // path
  EXPECT_EQ(graph::tree_node_count(3, 4), 85u);
}

TEST(TreeGenerator, BreadthFirstNumberingAndLatencies) {
  graph::TreeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.level_latency_ms = {100, 50};
  Rng rng(7);
  const auto topology = graph::tree(params, rng);
  ASSERT_EQ(topology.node_count(), 7u);
  EXPECT_EQ(topology.edge_count(), 6u);
  EXPECT_TRUE(tree::is_tree(topology));

  const auto links = tree::extract_links(topology, 0, 150);
  EXPECT_EQ(links.parent[0], -1);
  // Level 1 children of the root at 100ms, level 2 at 50ms.
  for (graph::NodeId n : {1, 2}) {
    EXPECT_EQ(links.parent[n], 0);
    EXPECT_DOUBLE_EQ(links.up_latency_ms[n], 100);
  }
  EXPECT_EQ(links.parent[3], 1);
  EXPECT_EQ(links.parent[4], 1);
  EXPECT_EQ(links.parent[5], 2);
  EXPECT_EQ(links.parent[6], 2);
  for (graph::NodeId n : {3, 4, 5, 6})
    EXPECT_DOUBLE_EQ(links.up_latency_ms[n], 50);
  EXPECT_EQ(links.root(), 0);
  EXPECT_FALSE(links.any_finite_capacity());
}

TEST(TreeGenerator, LevelBandwidthMapsPerLevelWithZeroMeaningUncapped) {
  graph::TreeParams params;
  params.depth = 2;
  params.fanout = 2;
  params.level_latency_ms = {100};
  params.level_bandwidth = {0, 25};  // root links uncapped, leaf links at 25
  Rng rng(7);
  const auto topology = graph::tree(params, rng);
  const auto links = tree::extract_links(topology, 0, 150);
  EXPECT_TRUE(links.any_finite_capacity());
  for (graph::NodeId n : {1, 2})
    EXPECT_TRUE(std::isinf(links.up_capacity[n]));
  for (graph::NodeId n : {3, 4, 5, 6})
    EXPECT_DOUBLE_EQ(links.up_capacity[n], 25);
}

TEST(TreeGenerator, LastLatencyEntryRepeatsForDeeperLevels) {
  graph::TreeParams params;
  params.depth = 3;
  params.fanout = 1;  // path 0-1-2-3
  params.level_latency_ms = {100, 40};
  Rng rng(7);
  const auto topology = graph::tree(params, rng);
  const auto links = tree::extract_links(topology, 0, 500);
  EXPECT_DOUBLE_EQ(links.up_latency_ms[1], 100);
  EXPECT_DOUBLE_EQ(links.up_latency_ms[2], 40);
  EXPECT_DOUBLE_EQ(links.up_latency_ms[3], 40);  // repeats the last entry
}

TEST(TreeFamily, IsTreeRejectsCyclesAndDisconnection) {
  EXPECT_TRUE(tree::is_tree(make_tree(2, 2)));
  EXPECT_TRUE(tree::is_tree(graph::line(5, 100)));
  EXPECT_TRUE(tree::is_tree(graph::star(6, 100)));
  EXPECT_FALSE(tree::is_tree(graph::ring(5, 100)));
  graph::Topology lonely(3);
  lonely.add_edge(0, 1, 100);
  EXPECT_FALSE(tree::is_tree(lonely));  // node 2 unreachable
}

// ---------------------------------------------------------------------------
// closest_loads audit.

TEST(ClosestLoads, FirstStoredAncestorServesAndLoadsAccumulate) {
  // Path 0-1-2-3 (root 0 = origin), 100ms links, local 10, Tlat 250.
  const auto topology = make_tree(3, 1);
  auto instance = tree_instance(topology, 250, 1, 1, 1.0);
  instance.demand.read(2, 0, 0) = 4;
  instance.demand.read(3, 0, 0) = 2;

  BoolCube placement(4, 1, 1);
  placement(1, 0, 0) = 1;  // replica at node 1
  const auto loads = tree::closest_loads(instance, placement);
  ASSERT_TRUE(loads.covered);
  EXPECT_TRUE(loads.within_caps);
  // Node 3's reads climb links 3->2 and 2->1; node 2's only 2->1.
  EXPECT_DOUBLE_EQ(loads.load[3], 2);
  EXPECT_DOUBLE_EQ(loads.load[2], 6);
  EXPECT_DOUBLE_EQ(loads.load[1], 0);  // served at 1, never crosses 1->0
}

TEST(ClosestLoads, UncoveredWhenFirstAncestorIsPastTlat) {
  // Path of 3: node 2's reads reach the origin only at 200ms > Tlat 150.
  const auto topology = make_tree(2, 1);
  auto instance = tree_instance(topology, 150, 1, 1, 1.0);
  instance.demand.read(2, 0, 0) = 1;

  const BoolCube empty(3, 1, 1);
  const auto none = tree::closest_loads(instance, empty);
  EXPECT_FALSE(none.covered);

  BoolCube mid(3, 1, 1);
  mid(1, 0, 0) = 1;
  EXPECT_TRUE(tree::closest_loads(instance, mid).covered);
}

TEST(ClosestLoads, CapViolationDetected) {
  graph::TreeParams params;
  params.depth = 1;
  params.fanout = 2;
  params.level_latency_ms = {100};
  params.level_bandwidth = {3};
  Rng rng(3);
  const auto topology = graph::tree(params, rng);
  auto instance = tree_instance(topology, 150, 1, 1, 1.0);
  instance.demand.read(1, 0, 0) = 5;  // 5 > cap 3 on 1->0 when not stored

  const BoolCube empty(3, 1, 1);
  const auto loads = tree::closest_loads(instance, empty);
  EXPECT_TRUE(loads.covered);
  EXPECT_FALSE(loads.within_caps);
  EXPECT_DOUBLE_EQ(loads.load[1], 5);

  BoolCube stored(3, 1, 1);
  stored(1, 0, 0) = 1;
  EXPECT_TRUE(tree::closest_loads(instance, stored).within_caps);
}

// ---------------------------------------------------------------------------
// Brute-force cross-check of the DP.

struct Brute {
  bool feasible = false;
  double cost = 0;
};

// Enumerate every 0/1 placement over the non-origin (node, object) cells and
// keep the cheapest feasible one. Ground truth: evaluate_placement for
// class/create validity and Global-routing QoS; closest_loads for the
// closest policy's coverage and capacities.
Brute brute_force(const mcperf::Instance& instance,
                  const mcperf::ClassSpec& spec) {
  const std::size_t n_count = instance.node_count();
  const std::size_t k_count = instance.object_count();
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t n = 0; n < n_count; ++n) {
    if (instance.is_origin(n)) continue;
    for (std::size_t k = 0; k < k_count; ++k) cells.push_back({n, k});
  }
  WANPLACE_REQUIRE(cells.size() <= 20, "brute force instance too large");
  const bool closest = spec.routing == mcperf::Routing::Closest;

  Brute best;
  for (std::size_t mask = 0; mask < (std::size_t{1} << cells.size());
       ++mask) {
    BoolCube placement(n_count, 1, k_count);
    for (std::size_t b = 0; b < cells.size(); ++b)
      if (mask & (std::size_t{1} << b))
        placement(cells[b].first, 0, cells[b].second) = 1;
    const auto ev = bounds::evaluate_placement(instance, spec, placement);
    bool ok = ev.create_valid;
    if (ok && closest) {
      const auto loads = tree::closest_loads(instance, placement);
      ok = loads.covered && loads.within_caps;
    } else if (ok) {
      ok = ev.goal_met;
    }
    if (!ok) continue;
    if (!best.feasible || ev.cost < best.cost) {
      best.feasible = true;
      best.cost = ev.cost;
    }
  }
  return best;
}

void expect_dp_matches_brute_force(const mcperf::Instance& instance,
                                   const mcperf::ClassSpec& spec,
                                   const std::string& label) {
  const auto brute = brute_force(instance, spec);
  const auto dp = tree::solve_tree_dp(instance, spec);
  ASSERT_EQ(dp.feasible, brute.feasible) << label;
  if (!brute.feasible) return;
  EXPECT_NEAR(dp.optimum, brute.cost, 1e-9 * std::max(1.0, brute.cost))
      << label;
  // The witness must achieve the optimum under the ground-truth evaluator.
  const auto ev = bounds::evaluate_placement(instance, spec, dp.placement);
  EXPECT_TRUE(ev.create_valid) << label;
  EXPECT_NEAR(ev.cost, dp.optimum, 1e-9 * std::max(1.0, dp.optimum)) << label;
  if (spec.routing == mcperf::Routing::Closest) {
    const auto loads = tree::closest_loads(instance, dp.placement);
    EXPECT_TRUE(loads.covered) << label;
    EXPECT_TRUE(loads.within_caps) << label;
  } else {
    EXPECT_TRUE(ev.goal_met) << label;
  }
}

TEST(TreeDp, MatchesBruteForceOnFixedSmallTrees) {
  // Depth-2 binary tree, global routing, two objects.
  {
    const auto topology = make_tree(2, 2);  // 7 nodes
    auto instance = tree_instance(topology, 150, 1, 2, 1.0);
    instance.demand.read(3, 0, 0) = 3;
    instance.demand.read(4, 0, 0) = 1;
    instance.demand.read(5, 0, 1) = 2;
    instance.demand.read(6, 0, 1) = 2;
    instance.demand.write(0, 0, 0) = 1;
    instance.costs.beta = 0.5;
    instance.costs.delta = 0.25;
    expect_dp_matches_brute_force(instance, mcperf::classes::general(),
                                  "binary/global");
    expect_dp_matches_brute_force(instance, mcperf::classes::closest(),
                                  "binary/closest");
  }
  // Path with heterogeneous storage costs.
  {
    const auto topology = make_tree(3, 1);  // path of 4
    auto instance = tree_instance(topology, 250, 1, 1, 1.0);
    instance.demand.read(1, 0, 0) = 2;
    instance.demand.read(3, 0, 0) = 5;
    instance.storage_scale = {1, 4, 0.5, 2};
    instance.costs.beta = 1;
    expect_dp_matches_brute_force(instance, mcperf::classes::general(),
                                  "path/global");
    expect_dp_matches_brute_force(instance, mcperf::classes::closest(),
                                  "path/closest");
  }
  // Closest with a binding bandwidth cap.
  {
    graph::TreeParams params;
    params.depth = 2;
    params.fanout = 2;
    params.level_latency_ms = {100, 50};
    params.level_bandwidth = {4, 0};
    Rng rng(11);
    const auto topology = graph::tree(params, rng);
    auto instance = tree_instance(topology, 250, 1, 1, 1.0);
    instance.demand.read(3, 0, 0) = 3;
    instance.demand.read(4, 0, 0) = 3;
    instance.demand.read(2, 0, 0) = 2;
    instance.costs.beta = 0.5;
    expect_dp_matches_brute_force(instance, mcperf::classes::closest(),
                                  "capped/closest");
  }
}

TEST(TreeDp, MatchesBruteForceOnFuzzedSmallTrees) {
  const std::uint64_t base = fuzz_base_seed();
  std::size_t checked = 0;
  for (std::uint64_t offset = 0; checked < 30 && offset < 400; ++offset) {
    auto fuzz = fuzz_tree_instance(base + 50000 + offset);
    const std::size_t cells = (fuzz.instance.node_count() - 1) *
                              fuzz.instance.object_count();
    if (cells > 14) continue;  // keep 2^cells enumerable
    ++checked;
    expect_dp_matches_brute_force(
        fuzz.instance, fuzz.spec,
        "seed " + std::to_string(base + 50000 + offset));
  }
  EXPECT_GE(checked, 25u);
}

// ---------------------------------------------------------------------------
// Degenerate shapes and window regressions.

TEST(TreeDp, DepthOneStarAllShapes) {
  for (std::size_t fanout : {1u, 2u, 3u, 5u}) {
    const auto topology = make_tree(1, fanout);
    auto instance = tree_instance(topology, 150, 1, 1, 1.0);
    for (std::size_t n = 1; n < instance.node_count(); ++n)
      instance.demand.read(n, 0, 0) = static_cast<double>(n);
    expect_dp_matches_brute_force(instance, mcperf::classes::general(),
                                  "star f=" + std::to_string(fanout));
    expect_dp_matches_brute_force(instance, mcperf::classes::closest(),
                                  "star/closest f=" + std::to_string(fanout));
  }
}

TEST(TreeDp, SingleNodeOriginOnlyTree) {
  // depth handled via a 2-node path where only the origin has demand: the
  // optimum is 0 (origin serves itself free of charge).
  const auto topology = make_tree(1, 1);
  auto instance = tree_instance(topology, 150, 1, 1, 1.0);
  instance.demand.read(0, 0, 0) = 7;
  const auto dp = tree::solve_tree_dp(instance, mcperf::classes::general());
  ASSERT_TRUE(dp.feasible);
  EXPECT_DOUBLE_EQ(dp.optimum, 0);
}

TEST(TreeDp, ReactiveClassCannotCreateInASingleInterval) {
  // Reactive creation needs strictly-earlier activity; with one interval no
  // non-origin replica can ever be created, so coverage beyond the origin's
  // radius is infeasible.
  const auto topology = make_tree(2, 1);  // path 0-1-2, 100ms links
  auto instance = tree_instance(topology, 150, 1, 1, 1.0);
  instance.demand.read(2, 0, 0) = 1;  // 200ms from the origin
  const auto dp = tree::solve_tree_dp(instance, mcperf::classes::reactive());
  EXPECT_FALSE(dp.feasible);
  expect_dp_matches_brute_force(instance, mcperf::classes::reactive(),
                                "reactive/path");

  // Within the radius it is feasible at zero extra cost.
  instance.demand.read(2, 0, 0) = 0;
  instance.demand.read(1, 0, 0) = 3;
  const auto near = tree::solve_tree_dp(instance, mcperf::classes::reactive());
  ASSERT_TRUE(near.feasible);
  EXPECT_DOUBLE_EQ(near.optimum, 0);
}

TEST(TreeDp, InfeasibleExactlyWhenUnachievableAtFullCoverage) {
  // tqos = 1 strictness: the DP must agree with the achievability analysis
  // on Global-routing instances (no caps) — both decide "can every demand
  // be covered".
  const std::uint64_t base = fuzz_base_seed();
  std::size_t compared = 0;
  for (std::uint64_t offset = 0; compared < 20 && offset < 200; ++offset) {
    auto fuzz = fuzz_tree_instance(base + 90000 + offset);
    if (fuzz.spec.routing == mcperf::Routing::Closest) continue;
    auto instance = fuzz.instance;
    instance.goal = mcperf::QosGoal{1.0, mcperf::QosScope::PerUser};
    ++compared;
    const auto ach = mcperf::max_achievable_qos(instance, fuzz.spec);
    const auto dp = tree::solve_tree_dp(instance, fuzz.spec);
    EXPECT_EQ(dp.feasible, ach.achievable(1.0))
        << "seed " << base + 90000 + offset;
  }
  EXPECT_GE(compared, 15u);
}

TEST(TreeDp, ClosestPrefersNotStoringWhenLocalExceedsTlat) {
  // local = 200 > Tlat = 150: a node that stores must serve itself at 200ms
  // and is uncovered; leaving the replica on the parent covers it at 100ms.
  const auto topology = make_tree(1, 2, /*level_latency=*/100,
                                  /*local_latency=*/200);
  auto instance = tree_instance(topology, 150, 1, 1, 1.0);
  instance.demand.read(1, 0, 0) = 4;

  BoolCube storing(3, 1, 1);
  storing(1, 0, 0) = 1;
  EXPECT_FALSE(tree::closest_loads(instance, storing).covered);

  const auto dp = tree::solve_tree_dp(instance, mcperf::classes::closest());
  ASSERT_TRUE(dp.feasible);
  EXPECT_DOUBLE_EQ(dp.optimum, 0);  // origin at 100ms covers node 1
  EXPECT_EQ(dp.placement(1, 0, 0), 0);
  expect_dp_matches_brute_force(instance, mcperf::classes::closest(),
                                "local>tlat");
}

TEST(TreeDp, CapsOnlyTightenTheOptimum) {
  const std::uint64_t base = fuzz_base_seed();
  std::size_t compared = 0;
  for (std::uint64_t offset = 0; compared < 15 && offset < 300; ++offset) {
    auto fuzz = fuzz_tree_instance(base + 70000 + offset);
    if (!fuzz.capped) continue;
    ++compared;
    auto uncapped = fuzz.instance;
    uncapped.links->up_capacity.assign(uncapped.node_count(),
                                       graph::kUnlimitedBandwidth);
    const auto capped_dp = tree::solve_tree_dp(fuzz.instance, fuzz.spec);
    const auto free_dp = tree::solve_tree_dp(uncapped, fuzz.spec);
    if (!capped_dp.feasible) continue;  // caps may kill feasibility outright
    ASSERT_TRUE(free_dp.feasible);
    EXPECT_GE(capped_dp.optimum,
              free_dp.optimum - 1e-9 * std::max(1.0, free_dp.optimum))
        << "seed " << base + 70000 + offset;
  }
  EXPECT_GE(compared, 10u);
}

TEST(TreeDp, RejectsInstancesOutsideTheWindow) {
  const auto topology = make_tree(2, 2);
  // Two intervals.
  {
    auto instance = tree_instance(topology, 150, 2, 1, 1.0);
    EXPECT_THROW(tree::solve_tree_dp(instance, mcperf::classes::general()),
                 InvalidArgument);
  }
  // Latency penalty term.
  {
    auto instance = tree_instance(topology, 150, 1, 1, 1.0);
    instance.costs.gamma = 1;
    EXPECT_THROW(tree::solve_tree_dp(instance, mcperf::classes::general()),
                 InvalidArgument);
  }
  // Provisioned storage class.
  {
    auto instance = tree_instance(topology, 150, 1, 1, 1.0);
    EXPECT_THROW(
        tree::solve_tree_dp(instance, mcperf::classes::storage_constrained()),
        InvalidArgument);
  }
  // Partial-coverage scope (Overall tqos < 1 is not full coverage).
  {
    auto instance = tree_instance(topology, 150, 1, 1, 0.9,
                                  mcperf::QosScope::Overall);
    EXPECT_THROW(tree::solve_tree_dp(instance, mcperf::classes::general()),
                 InvalidArgument);
  }
  // No link model.
  {
    auto instance = tree_instance(topology, 150, 1, 1, 1.0);
    instance.links.reset();
    EXPECT_THROW(tree::solve_tree_dp(instance, mcperf::classes::closest()),
                 InvalidArgument);
  }
}

TEST(TreeDp, HandlesThousandNodeTreesQuickly) {
  graph::TreeParams params;
  params.depth = 5;
  params.fanout = 4;  // 1365 nodes
  params.level_latency_ms = {100, 70, 50, 30, 30};
  Rng rng(21);
  const auto topology = graph::tree(params, rng);
  auto instance = tree_instance(topology, 250, 1, 1, 1.0);
  for (std::size_t n = 0; n < instance.node_count(); ++n)
    instance.demand.read(n, 0, 0) = static_cast<double>(1 + n % 4);
  instance.costs.beta = 0.5;

  for (const auto& spec :
       {mcperf::classes::general(), mcperf::classes::closest()}) {
    const auto dp = tree::solve_tree_dp(instance, spec);
    ASSERT_TRUE(dp.feasible) << spec.name;
    const auto ev = bounds::evaluate_placement(instance, spec, dp.placement);
    EXPECT_TRUE(ev.create_valid) << spec.name;
    EXPECT_NEAR(ev.cost, dp.optimum, 1e-9 * std::max(1.0, dp.optimum))
        << spec.name;
  }
}

}  // namespace
}  // namespace wanplace
