#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/reachability.h"
#include "graph/shortest_paths.h"
#include "graph/topology.h"
#include "util/check.h"
#include "util/rng.h"

namespace wanplace::graph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Floyd-Warshall oracle for cross-checking Dijkstra.
LatencyMatrix floyd_warshall(const Topology& topology) {
  const std::size_t n = topology.node_count();
  LatencyMatrix d(n, n, kInf);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& nb : topology.neighbors(static_cast<NodeId>(i)))
      d(i, nb.node) = std::min(d(i, nb.node), nb.latency_ms);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        d(i, j) = std::min(d(i, j), d(i, k) + d(k, j));
  for (std::size_t i = 0; i < n; ++i) d(i, i) = topology.local_latency_ms();
  return d;
}

TEST(Topology, BasicConstruction) {
  Topology t(3, 5.0);
  t.add_edge(0, 1, 100);
  t.add_edge(1, 2, 150);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(t.local_latency_ms(), 5.0);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, RejectsBadEdges) {
  Topology t(3);
  EXPECT_THROW(t.add_edge(0, 0, 10), InvalidArgument);
  EXPECT_THROW(t.add_edge(0, 3, 10), InvalidArgument);
  EXPECT_THROW(t.add_edge(0, 1, 0), InvalidArgument);
  EXPECT_THROW(t.add_edge(0, 1, -5), InvalidArgument);
}

TEST(Topology, DisconnectedDetected) {
  Topology t(4);
  t.add_edge(0, 1, 10);
  t.add_edge(2, 3, 10);
  EXPECT_FALSE(t.connected());
  t.add_edge(1, 2, 10);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, UndirectedNeighbors) {
  Topology t(2);
  t.add_edge(0, 1, 42);
  ASSERT_EQ(t.neighbors(0).size(), 1u);
  ASSERT_EQ(t.neighbors(1).size(), 1u);
  EXPECT_EQ(t.neighbors(0)[0].node, 1);
  EXPECT_DOUBLE_EQ(t.neighbors(1)[0].latency_ms, 42);
}

TEST(ShortestPaths, LineTopology) {
  const auto t = line(4, 100, 7);
  const auto lat = all_pairs_latencies(t);
  EXPECT_DOUBLE_EQ(lat(0, 3), 300);
  EXPECT_DOUBLE_EQ(lat(0, 1), 100);
  EXPECT_DOUBLE_EQ(lat(2, 0), 200);
  EXPECT_DOUBLE_EQ(lat(1, 1), 7);  // local access latency
}

TEST(ShortestPaths, PicksShorterOfParallelRoutes) {
  Topology t(3);
  t.add_edge(0, 1, 100);
  t.add_edge(1, 2, 100);
  t.add_edge(0, 2, 500);
  const auto lat = all_pairs_latencies(t);
  EXPECT_DOUBLE_EQ(lat(0, 2), 200);  // via node 1
}

TEST(ShortestPaths, UnreachableIsInfinite) {
  Topology t(3);
  t.add_edge(0, 1, 50);
  const auto lat = all_pairs_latencies(t);
  EXPECT_TRUE(std::isinf(lat(0, 2)));
  EXPECT_TRUE(std::isinf(lat(2, 1)));
}

TEST(ShortestPaths, MatchesFloydWarshallOnRandomGraphs) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    WaxmanParams params;
    params.node_count = 12;
    auto t = waxman(params, rng);
    const auto dij = all_pairs_latencies(t);
    const auto fw = floyd_warshall(t);
    for (std::size_t i = 0; i < t.node_count(); ++i)
      for (std::size_t j = 0; j < t.node_count(); ++j)
        EXPECT_NEAR(dij(i, j), fw(i, j), 1e-9)
            << "trial " << trial << " pair " << i << "," << j;
  }
}

TEST(ShortestPaths, SymmetricForUndirectedGraphs) {
  Rng rng(99);
  AsLikeParams params;
  params.node_count = 15;
  const auto t = as_like(params, rng);
  const auto lat = all_pairs_latencies(t);
  for (std::size_t i = 0; i < 15; ++i)
    for (std::size_t j = 0; j < 15; ++j)
      EXPECT_NEAR(lat(i, j), lat(j, i), 1e-9);
}

TEST(Generators, AsLikeIsConnectedAndDeterministic) {
  AsLikeParams params;
  params.node_count = 20;
  Rng rng1(7), rng2(7);
  const auto a = as_like(params, rng1);
  const auto b = as_like(params, rng2);
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  const auto la = all_pairs_latencies(a);
  const auto lb = all_pairs_latencies(b);
  EXPECT_EQ(la, lb);
}

TEST(Generators, AsLikeLatenciesInRange) {
  AsLikeParams params;
  params.node_count = 20;
  Rng rng(5);
  const auto t = as_like(params, rng);
  for (std::size_t n = 0; n < t.node_count(); ++n)
    for (const auto& nb : t.neighbors(static_cast<NodeId>(n))) {
      EXPECT_GE(nb.latency_ms, params.min_link_latency_ms);
      EXPECT_LE(nb.latency_ms, params.max_link_latency_ms);
    }
}

TEST(Generators, AsLikeHasSkewedDegrees) {
  AsLikeParams params;
  params.node_count = 40;
  Rng rng(21);
  const auto t = as_like(params, rng);
  std::size_t max_degree = 0, min_degree = SIZE_MAX;
  for (std::size_t n = 0; n < t.node_count(); ++n) {
    const auto d = t.neighbors(static_cast<NodeId>(n)).size();
    max_degree = std::max(max_degree, d);
    min_degree = std::min(min_degree, d);
  }
  EXPECT_GE(min_degree, params.attach_links);
  EXPECT_GE(max_degree, 3 * min_degree / 2)
      << "preferential attachment should produce hubs";
}

TEST(Generators, WaxmanConnected) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    WaxmanParams params;
    params.node_count = 15;
    EXPECT_TRUE(waxman(params, rng).connected());
  }
}

TEST(Generators, RegularShapes) {
  EXPECT_EQ(ring(5, 10).edge_count(), 5u);
  EXPECT_EQ(star(5, 10).edge_count(), 4u);
  EXPECT_EQ(line(5, 10).edge_count(), 4u);
  EXPECT_TRUE(ring(5, 10).connected());
  EXPECT_TRUE(star(5, 10).connected());
  EXPECT_TRUE(line(5, 10).connected());
}

TEST(Reachability, WithinThreshold) {
  const auto t = line(3, 100, 10);
  const auto lat = all_pairs_latencies(t);
  const auto dist = within_threshold(lat, 150);
  EXPECT_TRUE(dist(0, 0));   // local access within threshold
  EXPECT_TRUE(dist(0, 1));   // 100ms
  EXPECT_FALSE(dist(0, 2));  // 200ms
}

TEST(Reachability, ThresholdBoundaryInclusive) {
  const auto t = line(2, 150, 10);
  const auto lat = all_pairs_latencies(t);
  const auto dist = within_threshold(lat, 150);
  EXPECT_TRUE(dist(0, 1));
}

TEST(Reachability, FetchMatrices) {
  const auto all = fetch_all(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_TRUE(all(i, j));

  const auto origin = fetch_origin_only(3, 2);
  EXPECT_TRUE(origin(0, 0));
  EXPECT_TRUE(origin(0, 2));
  EXPECT_FALSE(origin(0, 1));
  EXPECT_TRUE(origin(2, 2));
}

TEST(Reachability, NearestAssignment) {
  const auto t = line(4, 100, 10);
  const auto lat = all_pairs_latencies(t);
  const auto assignment = nearest_assignment(lat, {0, 3});
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], 0);  // 100 vs 200
  EXPECT_EQ(assignment[2], 3);
  EXPECT_EQ(assignment[3], 3);
}

TEST(Reachability, AssignmentTieBreaksToLowerId) {
  const auto t = line(3, 100, 10);
  const auto lat = all_pairs_latencies(t);
  const auto assignment = nearest_assignment(lat, {0, 2});
  EXPECT_EQ(assignment[1], 0);  // equidistant; lower id wins
}

TEST(Reachability, RestrictLatencies) {
  const auto t = line(4, 100, 10);
  const auto lat = all_pairs_latencies(t);
  const auto reduced = restrict_latencies(lat, {1, 3});
  EXPECT_EQ(reduced.rows(), 2u);
  EXPECT_DOUBLE_EQ(reduced(0, 1), 200);  // node1 -> node3
  EXPECT_DOUBLE_EQ(reduced(0, 0), 10);   // diagonal keeps local latency
}

TEST(TopologyIo, SaveLoadRoundTrip) {
  Rng rng(11);
  AsLikeParams params;
  params.node_count = 10;
  const auto original = as_like(params, rng);
  std::stringstream buffer;
  save_topology(original, buffer);
  const auto loaded = load_topology(buffer);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.edge_count(), original.edge_count());
  EXPECT_DOUBLE_EQ(loaded.local_latency_ms(), original.local_latency_ms());
  EXPECT_EQ(all_pairs_latencies(loaded), all_pairs_latencies(original));
}

TEST(TopologyIo, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "local_latency 5\n"
      "nodes 3   # trailing comment\n"
      "edge 0 1 120\n"
      "edge 1 2 90\n");
  const auto topology = load_topology(in);
  EXPECT_EQ(topology.node_count(), 3u);
  EXPECT_EQ(topology.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(topology.local_latency_ms(), 5);
}

TEST(TopologyIo, EdgesBeforeNodesDirective) {
  std::stringstream in(
      "edge 0 1 100\n"
      "nodes 2\n");
  const auto topology = load_topology(in);
  EXPECT_EQ(topology.edge_count(), 1u);
}

TEST(TopologyIo, RejectsMalformedInput) {
  std::stringstream missing_nodes("edge 0 1 100\n");
  EXPECT_THROW(load_topology(missing_nodes), Error);
  std::stringstream bad_directive("nodes 2\nfrobnicate 1\n");
  EXPECT_THROW(load_topology(bad_directive), Error);
  std::stringstream bad_edge("nodes 2\nedge 0 5 100\n");
  EXPECT_THROW(load_topology(bad_edge), Error);
  std::stringstream double_nodes("nodes 2\nnodes 3\n");
  EXPECT_THROW(load_topology(double_nodes), Error);
}

}  // namespace
}  // namespace wanplace::graph
