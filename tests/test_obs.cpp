// Telemetry subsystem tests: registry merge determinism under the thread
// pool, span nesting + JSONL schema, sensitivity reports, and the
// "telemetry never perturbs solves" differential guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "bounds/engine.h"
#include "core/selector.h"
#include "instance_helpers.h"
#include "lp/pdhg.h"
#include "lp/simplex.h"
#include "mcperf/builder.h"
#include "mcperf/heuristic_class.h"
#include "obs/metrics.h"
#include "obs/solve_report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace wanplace {
namespace {

/// Turns the telemetry layer on for one test and restores the default
/// disabled state (with cleared buffers) on exit, so tests can run in any
/// order within one process.
struct TelemetryScope {
  TelemetryScope() {
    obs::Registry::global().enable(true);
    obs::Registry::global().reset();
    obs::Tracer::global().enable(true);
    obs::Tracer::global().reset();
  }
  ~TelemetryScope() {
    obs::Registry::global().enable(false);
    obs::Registry::global().reset();
    obs::Tracer::global().enable(false);
    obs::Tracer::global().reset();
  }
};

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(ObsRegistry, DisabledCallsAreNoops) {
  ASSERT_FALSE(obs::metrics_enabled());
  obs::counter_add("obs_test.disabled_counter");
  obs::gauge_set("obs_test.disabled_gauge", 7);
  obs::histogram_record("obs_test.disabled_histogram", 1.5);
  const auto snapshot = obs::Registry::global().snapshot();
  EXPECT_EQ(snapshot.count("obs_test.disabled_counter"), 0u);
  EXPECT_EQ(snapshot.count("obs_test.disabled_gauge"), 0u);
  EXPECT_EQ(snapshot.count("obs_test.disabled_histogram"), 0u);
}

TEST(ObsRegistry, KindsAggregateCorrectly) {
  TelemetryScope scope;
  obs::counter_add("obs_test.counter");
  obs::counter_add("obs_test.counter", 2);
  obs::gauge_set("obs_test.gauge", 3);
  obs::gauge_set("obs_test.gauge", 9);
  obs::histogram_record("obs_test.histogram", 2);
  obs::histogram_record("obs_test.histogram", -1);
  obs::histogram_record("obs_test.histogram", 5);
  const auto snapshot = obs::Registry::global().snapshot();

  const auto& counter = snapshot.at("obs_test.counter");
  EXPECT_EQ(counter.kind, obs::MetricValue::Kind::Counter);
  EXPECT_EQ(counter.count, 2u);
  EXPECT_EQ(counter.sum, 3.0);

  const auto& gauge = snapshot.at("obs_test.gauge");
  EXPECT_EQ(gauge.kind, obs::MetricValue::Kind::Gauge);
  EXPECT_EQ(gauge.sum, 9.0);  // latest write wins

  const auto& histogram = snapshot.at("obs_test.histogram");
  EXPECT_EQ(histogram.kind, obs::MetricValue::Kind::Histogram);
  EXPECT_EQ(histogram.count, 3u);
  EXPECT_EQ(histogram.sum, 6.0);
  EXPECT_EQ(histogram.min, -1.0);
  EXPECT_EQ(histogram.max, 5.0);
  EXPECT_EQ(histogram.mean(), 2.0);
}

TEST(ObsRegistry, MergeIsDeterministicUnderThreadPool) {
  // Integer-valued contributions merge exactly regardless of which pool
  // worker's shard recorded them: two racing rounds must produce the same
  // snapshot, equal to the serial expectation.
  constexpr std::size_t kBlocks = 512;
  double expected_work = 0;
  double expected_len_sum = 0;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    expected_work += static_cast<double>(b % 7);
    expected_len_sum += static_cast<double>(b % 11);
  }
  obs::Snapshot snapshots[2];
  for (int round = 0; round < 2; ++round) {
    TelemetryScope scope;
    util::ThreadPool pool(4);
    pool.parallel_for(kBlocks, [](std::size_t b) {
      obs::counter_add("obs_test.pivots");
      obs::counter_add("obs_test.work", static_cast<double>(b % 7));
      obs::histogram_record("obs_test.len", static_cast<double>(b % 11));
    });
    snapshots[round] = obs::Registry::global().snapshot();

    const auto& pivots = snapshots[round].at("obs_test.pivots");
    EXPECT_EQ(pivots.count, kBlocks);
    EXPECT_EQ(pivots.sum, static_cast<double>(kBlocks));
    EXPECT_EQ(snapshots[round].at("obs_test.work").sum, expected_work);
    const auto& len = snapshots[round].at("obs_test.len");
    EXPECT_EQ(len.count, kBlocks);
    EXPECT_EQ(len.sum, expected_len_sum);
    EXPECT_EQ(len.min, 0.0);
    EXPECT_EQ(len.max, 10.0);
  }
  ASSERT_EQ(snapshots[0].size(), snapshots[1].size());
  for (const auto& [name, value] : snapshots[0]) {
    const auto& other = snapshots[1].at(name);
    EXPECT_EQ(value.count, other.count) << name;
    EXPECT_EQ(value.sum, other.sum) << name;
  }
}

TEST(ObsRegistry, ResetZeroesCells) {
  TelemetryScope scope;
  obs::counter_add("obs_test.reset_me", 5);
  obs::Registry::global().reset();
  obs::counter_add("obs_test.reset_me", 2);
  const auto snapshot = obs::Registry::global().snapshot();
  EXPECT_EQ(snapshot.at("obs_test.reset_me").sum, 2.0);
  EXPECT_EQ(snapshot.at("obs_test.reset_me").count, 1u);
}

TEST(ObsTrace, DisabledSpanIsInactive) {
  ASSERT_FALSE(obs::trace_enabled());
  obs::Span span("nothing");
  EXPECT_FALSE(span.active());
  span.attr("ignored", 1);  // must be safe while inactive
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

TEST(ObsTrace, SpanNestingLinksParentsAndAttrs) {
  TelemetryScope scope;
  {
    obs::Span outer("outer");
    outer.attr("pivots", 3);
    {
      obs::Span inner("inner");
      // Attaching to the *outer* span while a child is open must not land
      // on the child (the regression the shard-index design prevents).
      outer.attr("late", 1);
      inner.label("class", "caching");
    }
    WANPLACE_SPAN("leaf");
  }
  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), 3u);
  // spans() orders by start time: outer opened first.
  const auto& outer = spans[0];
  const auto& inner = spans[1];
  const auto& leaf = spans[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(leaf.name, "leaf");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(leaf.parent, outer.id);
  ASSERT_EQ(outer.attrs.size(), 2u);
  EXPECT_EQ(outer.attrs[0].first, "pivots");
  EXPECT_EQ(outer.attrs[0].second, 3.0);
  EXPECT_EQ(outer.attrs[1].first, "late");
  ASSERT_EQ(inner.labels.size(), 1u);
  EXPECT_EQ(inner.labels[0].first, "class");
  EXPECT_EQ(inner.labels[0].second, "caching");
  EXPECT_GE(inner.start_s, outer.start_s);
  EXPECT_GE(outer.duration_s, inner.duration_s);
}

TEST(ObsTrace, JsonlMatchesSchema) {
  TelemetryScope scope;
  {
    obs::Span solve("solve");
    solve.attr("rows", 42);
    solve.label("note", "a\"b\nc");  // must be escaped in the output
  }
  obs::trace_sample("residual", 10, 0.5);
  obs::counter_add("obs_test.jsonl_counter", 2);
  obs::histogram_record("obs_test.jsonl_hist", 1.5);

  std::ostringstream out;
  obs::Tracer::global().write_jsonl(out);
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  ASSERT_EQ(lines.size(), 5u);  // meta + 1 span + 1 sample + 2 metrics
  EXPECT_EQ(lines[0],
            "{\"type\":\"meta\",\"version\":2,\"spans\":1,\"samples\":1}");
  EXPECT_TRUE(contains(lines[1], "{\"type\":\"span\",\"id\":"));
  EXPECT_TRUE(contains(lines[1], "\"parent\":0"));
  EXPECT_TRUE(contains(lines[1], "\"name\":\"solve\""));
  EXPECT_TRUE(contains(lines[1], "\"rows\":42"));
  EXPECT_TRUE(contains(lines[1], "\"note\":\"a\\\"b\\nc\""));
  EXPECT_TRUE(contains(lines[2], "{\"type\":\"sample\",\"name\":"
                                 "\"residual\""));
  EXPECT_TRUE(contains(lines[2], "\"step\":10"));
  EXPECT_TRUE(contains(lines[2], "\"value\":0.5"));
  // The registry snapshot is name-sorted, so the counter precedes the
  // histogram at the end of the file.
  const std::string counter_line = lines[lines.size() - 2];
  const std::string hist_line = lines.back();
  EXPECT_EQ(counter_line,
            "{\"type\":\"metric\",\"name\":\"obs_test.jsonl_counter\","
            "\"kind\":\"counter\",\"count\":1,\"sum\":2}");
  // A single-sample histogram's quantiles clamp to the sample itself.
  EXPECT_EQ(hist_line,
            "{\"type\":\"metric\",\"name\":\"obs_test.jsonl_hist\","
            "\"kind\":\"histogram\",\"count\":1,\"sum\":1.5,"
            "\"min\":1.5,\"max\":1.5,\"p50\":1.5,\"p90\":1.5,"
            "\"p99\":1.5}");
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(contains(line, "\"type\":\""));
  }
}

TEST(ObsTrace, SummaryAggregatesByPath) {
  TelemetryScope scope;
  for (int i = 0; i < 2; ++i) {
    obs::Span bound("bound");
    obs::Span simplex("simplex");
    simplex.attr("iterations", 5);
  }
  const std::string summary = obs::Tracer::global().summary();
  EXPECT_TRUE(contains(summary, "trace summary (4 spans)"));
  EXPECT_TRUE(contains(summary, "bound  n=2"));
  // The child is indented under its parent path and sums its attrs.
  EXPECT_TRUE(contains(summary, "  simplex  n=2"));
  EXPECT_TRUE(contains(summary, "iterations=10"));
}

// summary() surfaces the hyper-sparse kernel telemetry — the FTRAN/BTRAN
// sparse/dense path split, the RHS-density histogram behind the crossover,
// and R-file compression events — from the metrics registry below the span
// tree, without dragging in unrelated metrics.
TEST(ObsTrace, SummaryIncludesKernelMetrics) {
  TelemetryScope scope;
  obs::counter_add("simplex.ftran.sparse", 7);
  obs::counter_add("simplex.ftran.dense", 3);
  obs::counter_add("lu.rfile.compressions", 1);
  obs::histogram_record("simplex.rhs_density", 0.05);
  obs::histogram_record("simplex.rhs_density", 0.15);
  obs::counter_add("obs_test.unrelated", 1);
  const std::string summary = obs::Tracer::global().summary();
  EXPECT_TRUE(contains(summary, "kernel metrics"));
  EXPECT_TRUE(contains(summary, "simplex.ftran.sparse  n=1  total=7"));
  EXPECT_TRUE(contains(summary, "simplex.ftran.dense  n=1  total=3"));
  EXPECT_TRUE(contains(summary, "lu.rfile.compressions  n=1  total=1"));
  EXPECT_TRUE(contains(summary, "simplex.rhs_density  n=2  mean=0.1"));
  EXPECT_FALSE(contains(summary, "obs_test.unrelated"));
}

// The bounds.gap histogram must only record gaps that were actually
// computed: a solve with rounding skipped (run_rounding = false, or the
// average-latency goal) must not contribute a spurious 0 sample that drags
// the distribution toward a tightness the run never measured. Roundings
// that ran and failed count under bounds.rounding_infeasible instead.
TEST(ObsBounds, GapRecordedOnlyWhenRoundingProducedACost) {
  const auto instance = test::random_instance(7);
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;
  {
    TelemetryScope scope;
    auto skip = options;
    skip.run_rounding = false;
    bounds::compute_bound(instance, mcperf::classes::general(), skip);
    const auto snapshot = obs::Registry::global().snapshot();
    EXPECT_EQ(snapshot.count("bounds.gap"), 0u);
    EXPECT_EQ(snapshot.count("bounds.rounding_infeasible"), 0u);
    EXPECT_EQ(snapshot.at("bounds.classes").sum, 1.0);
  }
  {
    TelemetryScope scope;
    const auto bound =
        bounds::compute_bound(instance, mcperf::classes::general(), options);
    ASSERT_TRUE(bound.rounded_feasible);
    const auto snapshot = obs::Registry::global().snapshot();
    ASSERT_EQ(snapshot.count("bounds.gap"), 1u);
    EXPECT_EQ(snapshot.at("bounds.gap").count, 1u);
    EXPECT_EQ(snapshot.at("bounds.gap").sum, bound.gap);
  }
}

TEST(ObsReport, ShadowPricesMapToQosRows) {
  const auto instance = test::random_instance(7);
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;
  const auto detail = bounds::compute_bound_detail(
      instance, mcperf::classes::general(), options);
  ASSERT_TRUE(detail.bound.achievable);

  const auto report = obs::make_solve_report(detail);
  EXPECT_EQ(report.class_name, "general");
  EXPECT_EQ(report.lower_bound, detail.bound.lower_bound);
  ASSERT_EQ(report.qos.size(), detail.built.qos_rows.size());
  ASSERT_FALSE(report.qos.empty());
  bool any_binding = false;
  for (const auto& row : report.qos) {
    EXPECT_TRUE(contains(row.row_name, "qos[")) << row.row_name;
    EXPECT_GE(row.shadow_price, 0.0);
    ASSERT_LT(row.row, detail.solution.y.size());
    // The dual is reported verbatim (clamped at 0): the builder already
    // normalized the row so no rescaling happens here.
    EXPECT_EQ(row.shadow_price,
              std::max(0.0, detail.solution.y[row.row]));
    EXPECT_GT(row.total_reads, 0.0);
    any_binding = any_binding || row.binding;
    EXPECT_EQ(row.binding, row.shadow_price > 1e-7);
  }
  // A tight QoS goal makes at least one coverage row bind at the optimum.
  EXPECT_TRUE(any_binding);

  const std::string text = obs::to_string(report);
  EXPECT_TRUE(contains(text, "shadow price"));
  EXPECT_TRUE(contains(text, "general"));
}

TEST(ObsDifferential, SimplexBitIdenticalWithTelemetry) {
  const auto instance = test::random_instance(11);
  const auto built = mcperf::build_lp(instance, mcperf::classes::general());
  lp::SimplexOptions options;
  const auto base = lp::solve_simplex(built.model, options);
  lp::LpSolution with;
  {
    TelemetryScope scope;
    with = lp::solve_simplex(built.model, options);
    // The instrumented solve actually reported to the registry.
    const auto snapshot = obs::Registry::global().snapshot();
    EXPECT_EQ(snapshot.at("simplex.solves").sum, 1.0);
    EXPECT_EQ(snapshot.at("simplex.iterations").sum,
              static_cast<double>(with.iterations));
  }
  EXPECT_EQ(base.status, with.status);
  EXPECT_EQ(base.objective, with.objective);
  EXPECT_EQ(base.dual_bound, with.dual_bound);
  EXPECT_EQ(base.iterations, with.iterations);
  EXPECT_EQ(base.refactorizations, with.refactorizations);
  EXPECT_EQ(base.x, with.x);
  EXPECT_EQ(base.y, with.y);
}

TEST(ObsDifferential, PdhgBitIdenticalWithTelemetry) {
  const auto instance = test::random_instance(13);
  const auto built = mcperf::build_lp(instance, mcperf::classes::general());
  lp::PdhgOptions options;
  options.max_iterations = 20'000;
  const auto base = lp::solve_pdhg(built.model, options);
  lp::LpSolution with;
  {
    TelemetryScope scope;
    with = lp::solve_pdhg(built.model, options);
    EXPECT_EQ(obs::Registry::global().snapshot().at("pdhg.solves").sum, 1.0);
    EXPECT_FALSE(obs::Tracer::global().spans().empty());
  }
  EXPECT_EQ(base.status, with.status);
  EXPECT_EQ(base.objective, with.objective);
  EXPECT_EQ(base.dual_bound, with.dual_bound);
  EXPECT_EQ(base.iterations, with.iterations);
  EXPECT_EQ(base.x, with.x);
  EXPECT_EQ(base.y, with.y);
}

TEST(ObsDifferential, SelectorBitIdenticalAcrossParallelism) {
  const auto instance = test::random_instance(3);
  core::SelectorOptions options;
  options.parallelism = 1;
  options.keep_details = true;
  const auto base = core::HeuristicSelector(options).select(instance);
  ASSERT_EQ(base.details.size(), 1 + base.classes.size());

  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{2}}) {
    TelemetryScope scope;
    auto opts = options;
    opts.parallelism = parallelism;
    const auto run = core::HeuristicSelector(opts).select(instance);
    EXPECT_EQ(run.general.lower_bound, base.general.lower_bound);
    EXPECT_EQ(run.recommended, base.recommended);
    ASSERT_EQ(run.classes.size(), base.classes.size());
    for (std::size_t idx = 0; idx < base.classes.size(); ++idx) {
      EXPECT_EQ(run.classes[idx].achievable, base.classes[idx].achievable);
      EXPECT_EQ(run.classes[idx].lower_bound, base.classes[idx].lower_bound);
      EXPECT_EQ(run.classes[idx].rounded_feasible,
                base.classes[idx].rounded_feasible);
      EXPECT_EQ(run.classes[idx].rounded_cost,
                base.classes[idx].rounded_cost);
    }
    ASSERT_EQ(run.details.size(), base.details.size());
    for (std::size_t idx = 0; idx < base.details.size(); ++idx) {
      EXPECT_EQ(run.details[idx].solution.x, base.details[idx].solution.x);
      EXPECT_EQ(run.details[idx].solution.y, base.details[idx].solution.y);
    }
  }
}

}  // namespace
}  // namespace wanplace
