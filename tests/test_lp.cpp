#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lp/lu.h"
#include "lp/model.h"
#include "lp/pdhg.h"
#include "lp/scaling.h"
#include "lp/simplex.h"
#include "lp/sparse.h"
#include "util/check.h"
#include "util/rng.h"

namespace wanplace::lp {
namespace {

TEST(Sparse, MultiplyAndTranspose) {
  // [1 2 0]
  // [0 0 3]
  SparseMatrix m(2, 3, {{0, 0, 1}, {0, 1, 2}, {1, 2, 3}});
  EXPECT_EQ(m.nonzeros(), 3u);
  std::vector<double> x{1, 10, 100}, out;
  m.multiply(x, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 21);
  EXPECT_DOUBLE_EQ(out[1], 300);

  std::vector<double> y{2, 5}, outT;
  m.multiply_transpose(y, outT);
  ASSERT_EQ(outT.size(), 3u);
  EXPECT_DOUBLE_EQ(outT[0], 2);
  EXPECT_DOUBLE_EQ(outT[1], 4);
  EXPECT_DOUBLE_EQ(outT[2], 15);
}

TEST(Sparse, DuplicatesSummedZerosDropped) {
  SparseMatrix m(1, 2, {{0, 0, 1}, {0, 0, 2}, {0, 1, 5}, {0, 1, -5}});
  EXPECT_EQ(m.nonzeros(), 1u);
  std::vector<double> x{1, 1}, out;
  m.multiply(x, out);
  EXPECT_DOUBLE_EQ(out[0], 3);
}

TEST(Sparse, RowDotAndEntries) {
  SparseMatrix m(2, 3, {{1, 0, 4}, {1, 2, -1}});
  std::vector<double> x{2, 0, 3};
  EXPECT_DOUBLE_EQ(m.row_dot(1, x), 5);
  EXPECT_DOUBLE_EQ(m.row_dot(0, x), 0);
  EXPECT_EQ(m.row_size(1), 2u);
  EXPECT_EQ(m.row_entry(1, 0).col, 0u);
  EXPECT_DOUBLE_EQ(m.row_entry(1, 1).value, -1);
}

TEST(Sparse, NormEstimates) {
  SparseMatrix m(2, 2, {{0, 0, 3}, {1, 1, 4}});
  EXPECT_DOUBLE_EQ(m.max_abs(), 4);
  EXPECT_DOUBLE_EQ(m.frobenius_norm_squared(), 25);
  // Diagonal matrix: spectral norm is the max entry.
  EXPECT_NEAR(m.spectral_norm_estimate(), 4, 1e-6);
}

TEST(Scaling, RuizEquilibratesRowsAndCols) {
  std::vector<Triplet> triplets{
      {0, 0, 1000}, {0, 1, 2000}, {1, 0, 0.001}, {1, 1, 0.004}};
  const auto scaling = ruiz_scaling(2, 2, triplets, 20);
  double row_max[2] = {0, 0}, col_max[2] = {0, 0};
  for (const auto& t : triplets) {
    const double v =
        std::abs(t.value) * scaling.row_scale[t.row] * scaling.col_scale[t.col];
    row_max[t.row] = std::max(row_max[t.row], v);
    col_max[t.col] = std::max(col_max[t.col], v);
  }
  for (double v : row_max) EXPECT_NEAR(v, 1.0, 0.05);
  for (double v : col_max) EXPECT_NEAR(v, 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Sparse LU basis: factorize / FTRAN / BTRAN / eta update against dense
// reference arithmetic.

using LuColumns = std::vector<std::vector<BasisLu::Entry>>;

/// Random diagonally-dominant sparse basis (always nonsingular).
LuColumns random_basis_columns(Rng& rng, std::size_t m) {
  LuColumns columns(m);
  for (std::size_t p = 0; p < m; ++p) {
    columns[p].push_back(
        {static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
    for (std::size_t r = 0; r < m; ++r) {
      if (r == p || !rng.bernoulli(0.15)) continue;
      columns[p].push_back(
          {static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
    }
  }
  return columns;
}

/// b[r] = sum_p B[r][p] * x[p] — dense reference product.
std::vector<double> basis_multiply(const LuColumns& columns,
                                   const std::vector<double>& x) {
  std::vector<double> b(columns.size(), 0.0);
  for (std::size_t p = 0; p < columns.size(); ++p)
    for (const auto& e : columns[p]) b[e.index] += e.value * x[p];
  return b;
}

/// c[p] = sum_r B[r][p] * y[r] — dense reference transpose product.
std::vector<double> basis_multiply_transpose(const LuColumns& columns,
                                             const std::vector<double>& y) {
  std::vector<double> c(columns.size(), 0.0);
  for (std::size_t p = 0; p < columns.size(); ++p)
    for (const auto& e : columns[p]) c[p] += e.value * y[e.index];
  return c;
}

TEST(LuBasis, FtranSolvesAgainstDenseMultiply) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 5 + rng.uniform_index(40);
    const auto columns = random_basis_columns(rng, m);
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, columns));
    std::vector<double> x_true(m);
    for (auto& v : x_true) v = rng.uniform(-3, 3);
    auto rhs = basis_multiply(columns, x_true);
    lu.ftran(rhs);  // rhs -> position-space solution
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(rhs[p], x_true[p], 1e-9) << "trial " << trial;
  }
}

TEST(LuBasis, BtranSolvesTransposeAgainstDenseMultiply) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 5 + rng.uniform_index(40);
    const auto columns = random_basis_columns(rng, m);
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, columns));
    std::vector<double> y_true(m);
    for (auto& v : y_true) v = rng.uniform(-3, 3);
    auto c = basis_multiply_transpose(columns, y_true);
    lu.btran(c);  // position-space costs -> row-space duals
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_NEAR(c[r], y_true[r], 1e-9) << "trial " << trial;
  }
}

TEST(LuBasis, SingularBasisRejected) {
  // Structural: an empty column.
  LuColumns zero_col(3);
  zero_col[0] = {{0, 1.0}};
  zero_col[1] = {{1, 1.0}};
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(3, zero_col));

  // Numerical: two identical columns (rank 2).
  LuColumns dup(3);
  dup[0] = {{0, 1.0}, {1, 2.0}};
  dup[1] = {{0, 1.0}, {1, 2.0}};
  dup[2] = {{2, 1.0}};
  EXPECT_FALSE(lu.factorize(3, dup));

  // Sanity: a permutation of the identity factorizes fine afterwards.
  LuColumns perm(3);
  perm[0] = {{2, 1.0}};
  perm[1] = {{0, 1.0}};
  perm[2] = {{1, 1.0}};
  EXPECT_TRUE(lu.factorize(3, perm));
  std::vector<double> x{1, 2, 3};
  lu.ftran(x);  // row r holds column (r+1)%3, so x = (b[2], b[0], b[1])
  EXPECT_NEAR(x[0], 3, 1e-12);
  EXPECT_NEAR(x[1], 1, 1e-12);
  EXPECT_NEAR(x[2], 2, 1e-12);
}

TEST(LuBasis, EtaUpdateMatchesFreshFactorization) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 6 + rng.uniform_index(25);
    auto columns = random_basis_columns(rng, m);
    BasisLu updated;
    ASSERT_TRUE(updated.factorize(m, columns));

    // Replace a few random columns through the eta path, mirroring the
    // change in `columns` for the fresh factorization.
    for (int change = 0; change < 4; ++change) {
      const std::size_t p = rng.uniform_index(m);
      std::vector<BasisLu::Entry> incoming;
      incoming.push_back(
          {static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
      for (std::size_t r = 0; r < m; ++r)
        if (r != p && rng.bernoulli(0.2))
          incoming.push_back(
              {static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
      std::vector<double> w(m, 0.0);
      for (const auto& e : incoming) w[e.index] = e.value;
      updated.ftran(w);
      ASSERT_TRUE(updated.update(p, w, 1e-12));
      columns[p] = incoming;
    }
    EXPECT_EQ(updated.eta_count(), 4u);

    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(m, columns));
    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto via_etas = rhs, via_fresh = rhs;
    updated.ftran(via_etas);
    fresh.ftran(via_fresh);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(via_etas[p], via_fresh[p], 1e-8) << "trial " << trial;

    auto yt_etas = rhs, yt_fresh = rhs;
    updated.btran(yt_etas);
    fresh.btran(yt_fresh);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_NEAR(yt_etas[r], yt_fresh[r], 1e-8) << "trial " << trial;
  }
}

TEST(LuBasis, UpdateRejectsVanishingPivot) {
  LuColumns columns(2);
  columns[0] = {{0, 1.0}};
  columns[1] = {{1, 1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(2, columns));
  // Incoming direction with a zero pivot entry at the replaced position:
  // the eta would be singular, so the update must refuse and leave the
  // factorization untouched.
  std::vector<double> w{0.0, 5.0};
  EXPECT_FALSE(lu.update(0, w, 1e-9));
  EXPECT_EQ(lu.eta_count(), 0u);
  std::vector<double> x{7.0, 3.0};
  lu.ftran(x);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

// ---------------------------------------------------------------------------
// Forrest–Tomlin kernels: spike elimination, R-file solves and the
// stability-guard fallback, checked against fresh factorizations, dense
// reference arithmetic and the product-form path on identical update
// sequences.

constexpr auto kFt = BasisLu::UpdateMode::ForrestTomlin;

/// Push a random replacement column through an FT (or product-form) basis:
/// ftran the incoming column (stashing the spike), apply the update, and
/// mirror the change in `columns` for reference factorizations. Returns
/// false when the update was refused.
bool apply_random_replacement(Rng& rng, BasisLu& lu, LuColumns& columns,
                              std::size_t p) {
  const std::size_t m = columns.size();
  std::vector<BasisLu::Entry> incoming;
  incoming.push_back({static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
  for (std::size_t r = 0; r < m; ++r)
    if (r != p && rng.bernoulli(0.2))
      incoming.push_back({static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
  std::vector<double> w(m, 0.0);
  for (const auto& e : incoming) w[e.index] = e.value;
  lu.ftran(w);
  if (!lu.update(p, w, 1e-12)) return false;
  columns[p] = incoming;
  return true;
}

TEST(LuBasisFt, SpikeEliminationMatchesFreshFactorization) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 6 + rng.uniform_index(25);
    auto columns = random_basis_columns(rng, m);
    BasisLu updated;
    ASSERT_TRUE(updated.factorize(m, columns, 0.1, kFt));

    for (int change = 0; change < 6; ++change)
      ASSERT_TRUE(apply_random_replacement(
          rng, updated, columns, rng.uniform_index(m)))
          << "trial " << trial << " change " << change;
    EXPECT_EQ(updated.eta_count(), 0u);  // no product-form etas in FT mode
    EXPECT_EQ(updated.update_count(), 6u);

    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(m, columns, 0.1, kFt));
    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto via_updates = rhs, via_fresh = rhs;
    updated.ftran(via_updates);
    fresh.ftran(via_fresh);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(via_updates[p], via_fresh[p], 1e-8) << "trial " << trial;

    auto yt_updates = rhs, yt_fresh = rhs;
    updated.btran(yt_updates);
    fresh.btran(yt_fresh);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_NEAR(yt_updates[r], yt_fresh[r], 1e-8) << "trial " << trial;
  }
}

TEST(LuBasisFt, RFileSolvesMatchDenseReference) {
  // After updates, FTRAN/BTRAN run through the R-file; both must still
  // invert the *current* basis matrix exactly (checked against dense
  // reference products, not another factorization).
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 6 + rng.uniform_index(30);
    auto columns = random_basis_columns(rng, m);
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(m, columns, 0.1, kFt));
    for (int change = 0; change < 8; ++change)
      ASSERT_TRUE(apply_random_replacement(
          rng, lu, columns, rng.uniform_index(m)));

    std::vector<double> x_true(m);
    for (auto& v : x_true) v = rng.uniform(-3, 3);
    auto rhs = basis_multiply(columns, x_true);
    lu.ftran(rhs);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(rhs[p], x_true[p], 1e-8) << "trial " << trial;

    std::vector<double> y_true(m);
    for (auto& v : y_true) v = rng.uniform(-3, 3);
    auto c = basis_multiply_transpose(columns, y_true);
    lu.btran(c);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_NEAR(c[r], y_true[r], 1e-8) << "trial " << trial;
  }
}

TEST(LuBasisFt, AgreesWithProductFormOnIdenticalUpdateSequence) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t m = 8 + rng.uniform_index(20);
    const auto base = random_basis_columns(rng, m);
    BasisLu ft, pf;
    ASSERT_TRUE(ft.factorize(m, base, 0.1, kFt));
    ASSERT_TRUE(pf.factorize(m, base));

    auto ft_columns = base;
    for (int change = 0; change < 5; ++change) {
      const std::size_t p = rng.uniform_index(m);
      // Drive both paths with the same incoming column (regenerate the
      // randomness once, replay into each).
      const auto before = ft_columns;
      Rng replay_a(4200 + 100 * trial + change);
      ASSERT_TRUE(apply_random_replacement(replay_a, ft, ft_columns, p));
      Rng replay_b(4200 + 100 * trial + change);
      auto pf_columns = before;
      ASSERT_TRUE(apply_random_replacement(replay_b, pf, pf_columns, p));
    }
    EXPECT_GT(pf.eta_count(), 0u);
    EXPECT_EQ(ft.eta_count(), 0u);

    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto via_ft = rhs, via_pf = rhs;
    ft.ftran(via_ft);
    pf.ftran(via_pf);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(via_ft[p], via_pf[p], 1e-8) << "trial " << trial;
    auto yt_ft = rhs, yt_pf = rhs;
    ft.btran(yt_ft);
    pf.btran(yt_pf);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_NEAR(yt_ft[r], yt_pf[r], 1e-8) << "trial " << trial;
  }
}

TEST(LuBasisFt, StabilityGuardRefusesVanishingDiagonal) {
  // Identity basis; replacing column 0 with a column that has no component
  // on row 0 drives the eliminated diagonal to exactly zero — the guard
  // must refuse and leave the factorization untouched.
  LuColumns columns(2);
  columns[0] = {{0, 1.0}};
  columns[1] = {{1, 1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(2, columns, 0.1, kFt));
  std::vector<double> w{0.0, 5.0};
  lu.ftran(w);
  EXPECT_FALSE(lu.update(0, w, 1e-9));
  EXPECT_EQ(lu.update_count(), 0u);
  std::vector<double> x{7.0, 3.0};
  lu.ftran(x);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(LuBasisFt, RelativeStabilityGuardRefusesCollapsingPivot) {
  // Identity basis, incoming column (1e-6, 1e6): the updated basis is
  // nearly parallel to the retained unit column, so the eliminated
  // diagonal (1e-6) survives the absolute min_pivot check but collapses
  // relative to the spike magnitude (1e6) — the relative guard must fire
  // and leave the factorization untouched.
  LuColumns columns(2);
  columns[0] = {{0, 1.0}};
  columns[1] = {{1, 1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(2, columns, 0.1, kFt));
  std::vector<double> w{1e-6, 1e6};
  lu.ftran(w);
  EXPECT_FALSE(lu.update(0, w, 1e-9));
  EXPECT_EQ(lu.update_count(), 0u);
  std::vector<double> x{7.0, 3.0};
  lu.ftran(x);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(LuBasisFt, LongUpdateSequenceTracksFillAndStaysAccurate) {
  // 40 consecutive updates — far past the product-form eta comfort zone —
  // periodically cross-checked against a fresh factorization; the R-file
  // and factor nonzero counters must track the actual storage.
  Rng rng(24);
  const std::size_t m = 30;
  auto columns = random_basis_columns(rng, m);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(m, columns, 0.1, kFt));
  const std::size_t baseline = lu.baseline_nonzeros();
  EXPECT_EQ(baseline, lu.factor_nonzeros());

  std::size_t applied = 0;
  for (int change = 0; change < 40; ++change) {
    if (apply_random_replacement(rng, lu, columns, rng.uniform_index(m)))
      ++applied;
    if (change % 10 != 9) continue;
    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(m, columns, 0.1, kFt));
    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto a = rhs, b = rhs;
    lu.ftran(a);
    fresh.ftran(b);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(a[p], b[p], 1e-7) << "after change " << change;
  }
  EXPECT_EQ(lu.update_count(), applied);
  EXPECT_GE(applied, 38u);  // random replacements virtually never refused
  EXPECT_GT(lu.r_nonzeros(), 0u);
}

// ---------------------------------------------------------------------------
// Simplex on hand-checkable LPs.

TEST(Simplex, SimpleTwoVariable) {
  // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  =>  x=2? check: maximize
  // x + 2y over the region: y=2, x=2 -> objective -6.
  LpModel model;
  const auto x = model.add_variable(0, 3, -1, "x");
  const auto y = model.add_variable(0, 2, -2, "y");
  model.add_row(RowType::Le, 4, {x, y}, {1, 1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -6, 1e-8);
  EXPECT_NEAR(sol.x[x], 2, 1e-8);
  EXPECT_NEAR(sol.x[y], 2, 1e-8);
}

TEST(Simplex, GeRowsRequireCoverage) {
  // min x + 3y  s.t. x + y >= 2, y >= 0.5
  LpModel model;
  const auto x = model.add_variable(0, kInfinity, 1, "x");
  const auto y = model.add_variable(0, kInfinity, 3, "y");
  model.add_row(RowType::Ge, 2, {x, y}, {1, 1});
  model.add_row(RowType::Ge, 0.5, {y}, {1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.5 + 1.5, 1e-8);  // x=1.5, y=0.5
}

TEST(Simplex, EqualityRow) {
  // min x + y  s.t. x + 2y = 3, x,y in [0, 10]
  LpModel model;
  const auto x = model.add_variable(0, 10, 1);
  const auto y = model.add_variable(0, 10, 1);
  model.add_row(RowType::Eq, 3, {x, y}, {1, 2});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.5, 1e-8);  // all weight on y
  EXPECT_NEAR(sol.x[y], 1.5, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x  s.t. x >= -5 (bound), x + y >= 0, y <= 2.
  LpModel model;
  const auto x = model.add_variable(-5, 5, 1);
  const auto y = model.add_variable(0, 2, 0);
  model.add_row(RowType::Ge, 0, {x, y}, {1, 1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2, 1e-8);  // x=-2, y=2
}

TEST(Simplex, InfeasibleDetected) {
  LpModel model;
  const auto x = model.add_variable(0, 1, 1);
  model.add_row(RowType::Ge, 5, {x}, {1});  // x >= 5 impossible with x <= 1
  const auto sol = solve_simplex(model);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(Simplex, ConflictingRowsInfeasible) {
  LpModel model;
  const auto x = model.add_variable(0, 10, 1);
  const auto y = model.add_variable(0, 10, 1);
  model.add_row(RowType::Ge, 8, {x, y}, {1, 1});
  model.add_row(RowType::Le, 2, {x, y}, {1, 1});
  const auto sol = solve_simplex(model);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpModel model;
  const auto x = model.add_variable(0, kInfinity, -1);
  model.add_row(RowType::Ge, 0, {x}, {1});
  const auto sol = solve_simplex(model);
  EXPECT_EQ(sol.status, SolveStatus::Unbounded);
}

TEST(Simplex, FixedVariablesRespected) {
  LpModel model;
  const auto x = model.add_variable(0, 1, -10);
  const auto y = model.add_variable(0, 1, 1);
  model.fix_variable(x, 0.25);
  model.add_row(RowType::Ge, 1, {x, y}, {1, 1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[x], 0.25, 1e-9);
  EXPECT_NEAR(sol.x[y], 0.75, 1e-8);
}

TEST(Simplex, DualBoundMatchesObjectiveAtOptimum) {
  LpModel model;
  const auto x = model.add_variable(0, 3, 2);
  const auto y = model.add_variable(0, 3, 5);
  model.add_row(RowType::Ge, 4, {x, y}, {1, 1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 11, 1e-8);  // x=3, y=1
  EXPECT_NEAR(sol.dual_bound, sol.objective, 1e-6);
}

TEST(Simplex, SetCoverRelaxationFractional) {
  // Classic LP-relaxation of set cover: 3 elements, 3 sets each covering 2
  // elements; LP optimum 1.5, IP optimum 2.
  LpModel model;
  std::vector<std::size_t> sets;
  for (int s = 0; s < 3; ++s) sets.push_back(model.add_variable(0, 1, 1));
  model.add_row(RowType::Ge, 1, {sets[0], sets[1]}, {1, 1});
  model.add_row(RowType::Ge, 1, {sets[0], sets[2]}, {1, 1});
  model.add_row(RowType::Ge, 1, {sets[1], sets[2]}, {1, 1});
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.5, 1e-8);
}

// ---------------------------------------------------------------------------
// Certified dual bound.

TEST(DualBound, ArbitraryDualsAreValidLowerBounds) {
  LpModel model;
  const auto x = model.add_variable(0, 3, 2);
  const auto y = model.add_variable(0, 3, 5);
  model.add_row(RowType::Ge, 4, {x, y}, {1, 1});
  const auto opt = solve_simplex(model);
  ASSERT_EQ(opt.status, SolveStatus::Optimal);

  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> arbitrary{rng.uniform(-5, 5)};
    const double bound = certified_dual_bound(model, arbitrary);
    EXPECT_LE(bound, opt.objective + 1e-9);
  }
}

TEST(DualBound, ClampsWrongSignDuals) {
  LpModel model;
  model.add_variable(0, 1, 1);
  model.add_row(RowType::Le, 1, {0}, {1});
  // Positive dual on a Le row would be invalid; must be clamped, yielding
  // the trivial bound 0 (variables at lower bound).
  const double bound = certified_dual_bound(model, {100.0});
  EXPECT_DOUBLE_EQ(bound, 0);
}

TEST(DualBound, InfiniteBoxGivesMinusInfinity) {
  LpModel model;
  model.add_variable(-kInfinity, kInfinity, 1);
  model.add_row(RowType::Ge, 0, {0}, {2});
  // Dual 0 leaves reduced cost 1 on an unbounded-below variable.
  EXPECT_EQ(certified_dual_bound(model, {0.0}), -kInfinity);
}

// ---------------------------------------------------------------------------
// Randomized cross-validation: simplex is the oracle, PDHG must agree.

struct RandomLp {
  LpModel model;
};

RandomLp random_feasible_lp(Rng& rng, std::size_t vars, std::size_t rows,
                            bool with_equalities) {
  RandomLp out;
  std::vector<double> x0(vars);
  for (std::size_t j = 0; j < vars; ++j) {
    const double up = rng.uniform(0.5, 2.0);
    out.model.add_variable(0, up, rng.uniform(-1, 1));
    x0[j] = rng.uniform(0, up);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::size_t> cols;
    std::vector<double> coeffs;
    double activity = 0;
    for (std::size_t j = 0; j < vars; ++j) {
      if (!rng.bernoulli(0.4)) continue;
      const double a = rng.uniform(-2, 2);
      cols.push_back(j);
      coeffs.push_back(a);
      activity += a * x0[j];
    }
    if (cols.empty()) continue;
    const int kind = with_equalities ? static_cast<int>(rng.uniform_index(3))
                                     : static_cast<int>(rng.uniform_index(2));
    if (kind == 0)
      out.model.add_row(RowType::Ge, activity - rng.uniform(0, 1), cols,
                        coeffs);
    else if (kind == 1)
      out.model.add_row(RowType::Le, activity + rng.uniform(0, 1), cols,
                        coeffs);
    else
      out.model.add_row(RowType::Eq, activity, cols, coeffs);
  }
  return out;
}

class RandomLpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpSweep, SimplexOptimalAndSelfConsistent) {
  Rng rng(1000 + GetParam());
  auto lp = random_feasible_lp(rng, 12, 10, /*with_equalities=*/true);
  const auto sol = solve_simplex(lp.model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << GetParam();
  EXPECT_LE(lp.model.max_violation(sol.x), 1e-6);
  // Strong duality at optimum.
  EXPECT_NEAR(sol.dual_bound, sol.objective,
              1e-5 * (1 + std::abs(sol.objective)));
}

TEST_P(RandomLpSweep, PdhgBoundNeverExceedsOptimum) {
  Rng rng(2000 + GetParam());
  auto lp = random_feasible_lp(rng, 10, 8, /*with_equalities=*/true);
  const auto exact = solve_simplex(lp.model);
  ASSERT_EQ(exact.status, SolveStatus::Optimal);

  PdhgOptions options;
  options.max_iterations = 30000;
  options.tolerance = 1e-6;
  const auto approx = solve_pdhg(lp.model, options);
  // The certificate may be loose but must never overstate.
  EXPECT_LE(approx.dual_bound,
            exact.objective + 1e-6 * (1 + std::abs(exact.objective)))
      << "seed " << GetParam();
}

TEST_P(RandomLpSweep, PdhgConvergesToOptimum) {
  Rng rng(3000 + GetParam());
  auto lp = random_feasible_lp(rng, 8, 6, /*with_equalities=*/false);
  const auto exact = solve_simplex(lp.model);
  ASSERT_EQ(exact.status, SolveStatus::Optimal);

  PdhgOptions options;
  options.max_iterations = 120000;
  options.tolerance = 1e-6;
  const auto approx = solve_pdhg(lp.model, options);
  const double scale = 1 + std::abs(exact.objective);
  EXPECT_NEAR(approx.dual_bound, exact.objective, 2e-3 * scale)
      << "seed " << GetParam();
  EXPECT_NEAR(approx.objective, exact.objective, 2e-3 * scale)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Degenerate pivoting: Beale's classic cycling example. Dantzig pricing with
// a naive ratio test cycles forever on this LP; the stall detector must kick
// the solver into Bland's rule and terminate at the optimum.

LpModel beale_cycling_lp() {
  // min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
  // s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
  //      0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
  //      x3 <= 1,  x >= 0
  // Optimum -0.05 at x = (0.04, 0, 1, 0).
  LpModel model;
  const auto x1 = model.add_variable(0, kInfinity, -0.75);
  const auto x2 = model.add_variable(0, kInfinity, 150);
  const auto x3 = model.add_variable(0, kInfinity, -0.02);
  const auto x4 = model.add_variable(0, kInfinity, 6);
  model.add_row(RowType::Le, 0, {x1, x2, x3, x4}, {0.25, -60, -0.04, 9});
  model.add_row(RowType::Le, 0, {x1, x2, x3, x4}, {0.5, -90, -0.02, 3});
  model.add_row(RowType::Le, 1, {x3}, {1});
  return model;
}

TEST(SimplexDegenerate, BealeCyclingSolvedByAllPricingRules) {
  const auto model = beale_cycling_lp();
  for (const auto pricing :
       {SimplexOptions::Pricing::DevexDynamic,
        SimplexOptions::Pricing::PartialDevex,
        SimplexOptions::Pricing::DantzigFull}) {
    SimplexOptions options;
    options.pricing = pricing;
    const auto sol = solve_simplex(model, options);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);
    EXPECT_NEAR(sol.x[0], 0.04, 1e-9);
    EXPECT_NEAR(sol.x[2], 1.0, 1e-9);
  }
}

TEST(SimplexDegenerate, BealeSolvedUnderImmediateBlandRule) {
  // Force Bland's rule from the first degenerate pivot: the lowest-index
  // tie-break makes every pivot sequence finite regardless of degeneracy.
  const auto model = beale_cycling_lp();
  SimplexOptions options;
  options.stall_limit = 1;
  const auto sol = solve_simplex(model, options);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

TEST(SimplexDegenerate, TinyRefactorPeriodStaysExact) {
  // Refactorizing every pivot exercises the refresh path constantly; the
  // answer must not depend on the period.
  const auto model = beale_cycling_lp();
  SimplexOptions options;
  options.refactor_period = 1;
  const auto sol = solve_simplex(model, options);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

TEST(SimplexDegenerate, BealeCyclingSolvedUnderAllBases) {
  // The degenerate pivot sequence must terminate at the optimum whichever
  // basis representation tracks it.
  const auto model = beale_cycling_lp();
  for (const auto basis : {SimplexOptions::Basis::ForrestTomlin,
                           SimplexOptions::Basis::ProductForm,
                           SimplexOptions::Basis::DenseInverse}) {
    SimplexOptions options;
    options.basis = basis;
    const auto sol = solve_simplex(model, options);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);
    EXPECT_NEAR(sol.x[0], 0.04, 1e-9);
    EXPECT_NEAR(sol.x[2], 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Eta-file edge cases: the refactorization triggers must be invisible in
// the certified answer no matter how often (or why) they fire.

TEST(SimplexEta, EtaLimitOneRefactorizesEveryPivot) {
  // eta_limit=1 hits the eta-file bound on every single pivot — the
  // worst-case trigger cadence — and must still certify the optimum.
  const auto model = beale_cycling_lp();
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::ProductForm;
  options.eta_limit = 1;
  const auto sol = solve_simplex(model, options);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

TEST(SimplexEta, EtaLimitInvariantOnRandomModels) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(9100 + seed);
    auto lp = random_feasible_lp(rng, 14, 12, /*with_equalities=*/true);
    SimplexOptions dense;
    dense.basis = SimplexOptions::Basis::DenseInverse;
    const auto reference = solve_simplex(lp.model, dense);
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    const double scale = 1 + std::abs(reference.objective);
    for (const std::size_t limit : {std::size_t{1}, std::size_t{4},
                                    std::size_t{128}}) {
      SimplexOptions options;
      options.basis = SimplexOptions::Basis::ProductForm;
      options.eta_limit = limit;
      const auto sol = solve_simplex(lp.model, options);
      ASSERT_EQ(sol.status, SolveStatus::Optimal)
          << "seed " << seed << " eta_limit " << limit;
      EXPECT_NEAR(sol.objective, reference.objective, 1e-6 * scale)
          << "seed " << seed << " eta_limit " << limit;
    }
  }
}

TEST(SimplexEta, ParanoidStabilityToleranceStillTerminates) {
  // lu_stability_tolerance close to 1 treats nearly every pivot under a
  // non-empty update file as suspected drift, forcing the
  // refactorize-and-retry path mid-iteration. After the rebuild the update
  // file is empty, so each retried pivot is accepted — the solver must
  // terminate at the exact optimum, never loop. Exercised under both LU
  // update schemes.
  const auto model = beale_cycling_lp();
  for (const auto basis : {SimplexOptions::Basis::ForrestTomlin,
                           SimplexOptions::Basis::ProductForm}) {
    SimplexOptions options;
    options.basis = basis;
    options.lu_stability_tolerance = 0.9;
    const auto sol = solve_simplex(model, options);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);

    for (int seed = 0; seed < 5; ++seed) {
      Rng rng(9200 + seed);
      auto lp = random_feasible_lp(rng, 10, 8, /*with_equalities=*/true);
      SimplexOptions dense;
      dense.basis = SimplexOptions::Basis::DenseInverse;
      const auto reference = solve_simplex(lp.model, dense);
      ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
      const auto paranoid = solve_simplex(lp.model, options);
      ASSERT_EQ(paranoid.status, SolveStatus::Optimal) << "seed " << seed;
      EXPECT_NEAR(paranoid.objective, reference.objective,
                  1e-6 * (1 + std::abs(reference.objective)))
          << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential pricing test: the partial-pricing Devex path and the seed's
// full Dantzig path are different pivot sequences over the same LP — both
// must certify the same optimum, and PDHG must agree within its tolerance.

TEST(SimplexDifferential, PartialDevexMatchesDantzigFullOn50RandomModels) {
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(7000 + seed);
    const std::size_t vars = 8 + rng.uniform_index(12);
    const std::size_t rows = 6 + rng.uniform_index(10);
    auto lp = random_feasible_lp(rng, vars, rows, seed % 2 == 0);

    SimplexOptions devex;
    devex.pricing = SimplexOptions::Pricing::PartialDevex;
    const auto fast = solve_simplex(lp.model, devex);
    SimplexOptions dantzig;
    dantzig.pricing = SimplexOptions::Pricing::DantzigFull;
    const auto reference = solve_simplex(lp.model, dantzig);

    ASSERT_EQ(fast.status, SolveStatus::Optimal) << "seed " << seed;
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    const double scale = 1 + std::abs(reference.objective);
    EXPECT_NEAR(fast.objective, reference.objective, 1e-6 * scale)
        << "seed " << seed;
    EXPECT_NEAR(fast.dual_bound, reference.dual_bound, 1e-5 * scale)
        << "seed " << seed;
    EXPECT_LE(lp.model.max_violation(fast.x), 1e-6) << "seed " << seed;
  }
}

TEST(SimplexDifferential, PartialDevexMatchesPdhgOnRandomModels) {
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(8000 + seed);
    auto lp = random_feasible_lp(rng, 9, 7, /*with_equalities=*/false);
    const auto exact = solve_simplex(lp.model);
    ASSERT_EQ(exact.status, SolveStatus::Optimal) << "seed " << seed;

    PdhgOptions options;
    options.max_iterations = 60000;
    options.tolerance = 1e-6;
    const auto approx = solve_pdhg(lp.model, options);
    const double scale = 1 + std::abs(exact.objective);
    // PDHG's certificate must never overstate the simplex optimum, and its
    // converged objective must land within first-order-method tolerance.
    EXPECT_LE(approx.dual_bound, exact.objective + 1e-6 * scale)
        << "seed " << seed;
    EXPECT_NEAR(approx.objective, exact.objective, 5e-3 * scale)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Dynamic Devex pricing: maintained reduced costs + pivot-row weight
// updates must reach the same certified optimum as every other pricing /
// basis configuration, stay exact across reference-framework resets and
// refactor cadences, and be bit-identical under the parallel pivot-row
// pass.

TEST(SimplexDevex, DynamicMatchesStaticAndDantzigOn50RandomModels) {
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(7500 + seed);
    const std::size_t vars = 8 + rng.uniform_index(12);
    const std::size_t rows = 6 + rng.uniform_index(10);
    auto lp = random_feasible_lp(rng, vars, rows, seed % 2 == 0);

    const auto dynamic = solve_simplex(lp.model);  // DevexDynamic default
    SimplexOptions static_opts;
    static_opts.pricing = SimplexOptions::Pricing::PartialDevex;
    const auto static_devex = solve_simplex(lp.model, static_opts);
    SimplexOptions dantzig;
    dantzig.pricing = SimplexOptions::Pricing::DantzigFull;
    const auto reference = solve_simplex(lp.model, dantzig);

    ASSERT_EQ(dynamic.status, SolveStatus::Optimal) << "seed " << seed;
    ASSERT_EQ(static_devex.status, SolveStatus::Optimal) << "seed " << seed;
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    const double scale = 1 + std::abs(reference.objective);
    EXPECT_NEAR(dynamic.objective, reference.objective, 1e-6 * scale)
        << "seed " << seed;
    EXPECT_NEAR(dynamic.objective, static_devex.objective, 1e-6 * scale)
        << "seed " << seed;
    EXPECT_NEAR(dynamic.dual_bound, reference.dual_bound, 1e-5 * scale)
        << "seed " << seed;
    EXPECT_LE(lp.model.max_violation(dynamic.x), 1e-6) << "seed " << seed;
  }
}

TEST(SimplexDevex, ResetThresholdInvariantOnRandomModels) {
  // devex_reset_threshold = 1 forces a reference-framework reset after
  // essentially every pivot (weights grow monotonically from 1); the
  // pricing order changes, the certified optimum must not.
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng(7600 + seed);
    auto lp = random_feasible_lp(rng, 14, 12, /*with_equalities=*/true);
    const auto reference = solve_simplex(lp.model);
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    SimplexOptions resetty;
    resetty.devex_reset_threshold = 1.0;
    const auto sol = solve_simplex(lp.model, resetty);
    ASSERT_EQ(sol.status, SolveStatus::Optimal) << "seed " << seed;
    EXPECT_NEAR(sol.objective, reference.objective,
                1e-6 * (1 + std::abs(reference.objective)))
        << "seed " << seed;
  }
}

TEST(SimplexDevex, RefactorPeriodInvariantUnderForrestTomlin) {
  // Forcing refactorization every 1 / every 3 pivots versus the automatic
  // long period exercises totally different mixes of FT updates and
  // rebuilds; the answer must be period-independent.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(7700 + seed);
    auto lp = random_feasible_lp(rng, 16, 12, /*with_equalities=*/true);
    const auto reference = solve_simplex(lp.model);
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    const double scale = 1 + std::abs(reference.objective);
    for (const std::size_t period :
         {std::size_t{1}, std::size_t{3}, std::size_t{0}}) {
      SimplexOptions options;
      options.refactor_period = period;
      const auto sol = solve_simplex(lp.model, options);
      ASSERT_EQ(sol.status, SolveStatus::Optimal)
          << "seed " << seed << " period " << period;
      EXPECT_NEAR(sol.objective, reference.objective, 1e-6 * scale)
          << "seed " << seed << " period " << period;
    }
  }
}

TEST(SimplexDevex, FillGuardForcesRefactorizationsAndStaysExact) {
  // A fill factor below 1 makes the guard fire as soon as any update adds
  // a single nonzero; refactorization counts must reflect that and the
  // optimum must be unaffected.
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(7800 + seed);
    auto lp = random_feasible_lp(rng, 14, 12, /*with_equalities=*/true);
    const auto relaxed = solve_simplex(lp.model);
    ASSERT_EQ(relaxed.status, SolveStatus::Optimal) << "seed " << seed;
    SimplexOptions tight;
    tight.ft_fill_factor = 0.01;
    const auto guarded = solve_simplex(lp.model, tight);
    ASSERT_EQ(guarded.status, SolveStatus::Optimal) << "seed " << seed;
    EXPECT_GE(guarded.refactorizations, relaxed.refactorizations)
        << "seed " << seed;
    EXPECT_NEAR(guarded.objective, relaxed.objective,
                1e-6 * (1 + std::abs(relaxed.objective)))
        << "seed " << seed;
  }
}

TEST(SimplexDevex, ParallelPricingPassBitIdentical) {
  // The pivot-row pass partitions columns into fixed blocks, so any
  // parallelism value must produce bit-identical pivots, objectives and
  // solutions. parallel_pricing_rows=1 forces the pool to engage even on
  // these small models.
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(7900 + seed);
    auto lp = random_feasible_lp(rng, 18, 14, /*with_equalities=*/true);
    SimplexOptions serial;  // parallelism = 1 (default)
    const auto reference = solve_simplex(lp.model, serial);
    ASSERT_EQ(reference.status, SolveStatus::Optimal) << "seed " << seed;
    for (const std::size_t threads :
         {std::size_t{2}, std::size_t{3}, std::size_t{7}}) {
      SimplexOptions parallel;
      parallel.parallelism = threads;
      parallel.parallel_pricing_rows = 1;
      const auto sol = solve_simplex(lp.model, parallel);
      ASSERT_EQ(sol.status, SolveStatus::Optimal)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(sol.iterations, reference.iterations)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(sol.objective, reference.objective)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(sol.x.size(), reference.x.size());
      for (std::size_t j = 0; j < sol.x.size(); ++j)
        EXPECT_EQ(sol.x[j], reference.x[j])
            << "seed " << seed << " threads " << threads << " var " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// PDHG-specific behaviour.

TEST(Pdhg, SolvesBoxOnlyProblem) {
  LpModel model;
  model.add_variable(0, 2, -3);
  model.add_variable(-1, 1, 4);
  const auto sol = solve_pdhg(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.objective, -6 - 4);
  EXPECT_DOUBLE_EQ(sol.dual_bound, sol.objective);
}

TEST(Pdhg, DetectsInfeasibilityViaThreshold) {
  LpModel model;
  const auto x = model.add_variable(0, 1, 1);
  model.add_row(RowType::Ge, 5, {x}, {1});
  PdhgOptions options;
  options.infeasibility_threshold = 10;  // any feasible point costs <= 1
  options.max_iterations = 50000;
  const auto sol = solve_pdhg(model, options);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(Pdhg, BadlyScaledProblemStillConverges) {
  // Coefficients spread over 6 orders of magnitude — Ruiz scaling territory.
  LpModel model;
  const auto x = model.add_variable(0, 1, 1);
  const auto y = model.add_variable(0, 1, 1000);
  model.add_row(RowType::Ge, 500, {x, y}, {1000, 2000});
  const auto exact = solve_simplex(model);
  ASSERT_EQ(exact.status, SolveStatus::Optimal);
  PdhgOptions options;
  options.max_iterations = 100000;
  options.tolerance = 1e-6;
  const auto sol = solve_pdhg(model, options);
  EXPECT_NEAR(sol.dual_bound, exact.objective,
              1e-2 * (1 + std::abs(exact.objective)));
}

TEST(Pdhg, IterationLimitStillCertifies) {
  LpModel model;
  const auto x = model.add_variable(0, 3, 2);
  const auto y = model.add_variable(0, 3, 5);
  model.add_row(RowType::Ge, 4, {x, y}, {1, 1});
  PdhgOptions options;
  options.max_iterations = 50;  // far too few to converge
  options.check_period = 10;
  const auto sol = solve_pdhg(model, options);
  // Bound is certified whatever the status says: optimum is 11.
  EXPECT_LE(sol.dual_bound, 11 + 1e-9);
}

// ---------------------------------------------------------------------------
// Dual simplex + basis snapshots (warm-started re-optimization).

// min -x0 - 2 x1  s.t.  x0 + x1 <= 4, x0 + 3 x1 <= 6, 0 <= x <= 10.
// Optimum -5 at (3, 1).
LpModel dual_fixture() {
  LpModel model;
  const auto x0 = model.add_variable(0, 10, -1);
  const auto x1 = model.add_variable(0, 10, -2);
  model.add_row(RowType::Le, 4, {x0, x1}, {1, 1});
  model.add_row(RowType::Le, 6, {x0, x1}, {1, 3});
  return model;
}

TEST(SimplexDual, ColdDualMatchesPrimal) {
  const auto model = dual_fixture();
  const auto primal = solve_simplex(model);
  SimplexOptions dual;
  dual.method = SimplexOptions::Method::Dual;
  const auto sol = solve_simplex(model, dual);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, primal.objective, 1e-9);
  EXPECT_NEAR(sol.objective, -5, 1e-9);
  EXPECT_LE(model.max_violation(sol.x), 1e-9);
}

TEST(SimplexDual, SolutionExportsBasisSnapshot) {
  const auto model = dual_fixture();
  const auto sol = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_TRUE(sol.basis.compatible(model.variable_count(), model.row_count()));
  std::size_t basic = 0;
  for (const auto s : sol.basis.status)
    if (s == BasisSnapshot::Basic) ++basic;
  EXPECT_EQ(basic, model.row_count());
}

TEST(SimplexDual, WarmResolveOfSameModelTakesZeroIterations) {
  const auto model = dual_fixture();
  const auto first = solve_simplex(model);
  SimplexOptions warm;
  warm.method = SimplexOptions::Method::Dual;
  warm.warm_start = &first.basis;
  const auto again = solve_simplex(model, warm);
  ASSERT_EQ(again.status, SolveStatus::Optimal);
  EXPECT_EQ(again.iterations, 0u);
  EXPECT_NEAR(again.objective, first.objective, 1e-12);
}

TEST(SimplexDual, WarmResolveAfterBoundChangeSavesPivots) {
  auto model = dual_fixture();
  const auto first = solve_simplex(model);
  // Tighten x0: the old basic point turns primal infeasible — the case the
  // dual method exists for.
  model.set_bounds(0, 0, 2);
  const auto cold = solve_simplex(model);
  SimplexOptions warm;
  warm.method = SimplexOptions::Method::Dual;
  warm.warm_start = &first.basis;
  const auto sol = solve_simplex(model, warm);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9);
  EXPECT_LE(sol.iterations, cold.iterations);
  EXPECT_LE(model.max_violation(sol.x), 1e-9);
}

TEST(SimplexDual, DualDetectsInfeasibilityAfterBoundChange) {
  auto model = dual_fixture();
  model.add_row(RowType::Ge, 8, {std::size_t{0}, std::size_t{1}}, {1, 1});
  const auto first = solve_simplex(model);
  ASSERT_EQ(first.status, SolveStatus::Infeasible);

  auto feasible = dual_fixture();
  const auto seed = solve_simplex(feasible);
  // x0 + x1 <= 4 but both fixed near their upper bound: infeasible.
  feasible.set_bounds(0, 9, 10);
  feasible.set_bounds(1, 9, 10);
  SimplexOptions warm;
  warm.method = SimplexOptions::Method::Dual;
  warm.warm_start = &seed.basis;
  const auto sol = solve_simplex(feasible, warm);
  EXPECT_EQ(sol.status, SolveStatus::Infeasible);
}

TEST(SimplexDual, DenseInverseFallsBackToPrimal) {
  const auto model = dual_fixture();
  SimplexOptions options;
  options.method = SimplexOptions::Method::Dual;
  options.basis = SimplexOptions::Basis::DenseInverse;
  const auto sol = solve_simplex(model, options);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -5, 1e-9);
}

TEST(SimplexDual, UnboundedFallsBackToPrimal) {
  LpModel model;
  model.add_variable(0, kInfinity, -1);
  SimplexOptions options;
  options.method = SimplexOptions::Method::Dual;
  const auto sol = solve_simplex(model, options);
  EXPECT_EQ(sol.status, SolveStatus::Unbounded);
}

TEST(SimplexDual, IncompatibleSnapshotIgnored) {
  const auto small = dual_fixture();
  const auto seed = solve_simplex(small);
  LpModel bigger;
  const auto x0 = bigger.add_variable(0, 1, 1);
  const auto x1 = bigger.add_variable(0, 1, 1);
  const auto x2 = bigger.add_variable(0, 1, 1);
  bigger.add_row(RowType::Ge, 2, {x0, x1, x2}, {1, 1, 1});
  SimplexOptions options;
  options.method = SimplexOptions::Method::Dual;
  options.warm_start = &seed.basis;  // wrong shape: must be ignored
  const auto sol = solve_simplex(bigger, options);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 2, 1e-9);
}

TEST(SimplexDual, WarmPrimalAcceptsFeasibleBasis) {
  // Primal method with a warm basis that is still primal feasible (the
  // objective changed, not the bounds): phase 1 is skipped entirely.
  auto model = dual_fixture();
  const auto first = solve_simplex(model);
  model.set_objective(0, -3);  // optimum moves along the first row
  SimplexOptions warm;
  warm.warm_start = &first.basis;
  const auto sol = solve_simplex(model, warm);
  const auto cold = solve_simplex(model);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9);
  EXPECT_LE(sol.iterations, cold.iterations);
}

}  // namespace
}  // namespace wanplace::lp
