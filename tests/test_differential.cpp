// Randomized differential LP harness.
//
// Three independently implemented solve paths — simplex over the sparse LU
// basis (the default), simplex over the dense explicit inverse (the seed
// path, bit-identical numerics), and PDHG — are run over a seeded stream of
// random LPs (tests/lp_fuzz.h) and over real MC-PERF relaxations, and must
// agree on status and objective. The two simplex paths share pricing but
// not basis algebra, so any FTRAN/BTRAN/eta defect shows up as a status or
// objective split here long before it corrupts a paper experiment.
//
// Re-run a failing case locally with WANPLACE_FUZZ_SEED=<base> (the base
// seed is printed in every failure message; per-case seeds are base+offset).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "bounds/engine.h"
#include "instance_helpers.h"
#include "lp/model.h"
#include "lp/pdhg.h"
#include "lp/simplex.h"
#include "lp_fuzz.h"
#include "mcperf/builder.h"
#include "mcperf/heuristic_class.h"

namespace wanplace::lp {
namespace {

SimplexOptions lu_options() {
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::SparseLU;
  return options;
}

SimplexOptions dense_options() {
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::DenseInverse;
  return options;
}

/// Run one fuzz case through all three paths and cross-check.
void check_case(std::uint64_t base, std::uint64_t offset) {
  const auto fuzz = test::fuzz_lp(base + offset);
  const std::string tag = "base " + std::to_string(base) + " offset " +
                          std::to_string(offset) + " (" +
                          std::to_string(fuzz.vars) + "v x " +
                          std::to_string(fuzz.rows) + "r)";

  const auto lu = solve_simplex(fuzz.model, lu_options());
  const auto dense = solve_simplex(fuzz.model, dense_options());

  // The two basis representations must agree on status, always.
  ASSERT_EQ(lu.status, dense.status) << tag;

  switch (fuzz.kind) {
    case test::FuzzKind::Infeasible:
      ASSERT_EQ(lu.status, SolveStatus::Infeasible) << tag;
      return;  // PDHG's infeasibility detection is heuristic; skip it.
    case test::FuzzKind::Unbounded:
      ASSERT_EQ(lu.status, SolveStatus::Unbounded) << tag;
      return;
    case test::FuzzKind::Feasible:
      // Feasible by construction: never Infeasible. Free variables with
      // constrained rows can still make the instance legitimately
      // unbounded — both paths must agree on that (checked above).
      ASSERT_NE(lu.status, SolveStatus::Infeasible) << tag;
      break;
  }
  if (lu.status != SolveStatus::Optimal) return;

  const double scale = 1 + std::abs(dense.objective);
  EXPECT_NEAR(lu.objective, dense.objective, 1e-6 * scale) << tag;
  // Certificates may differ in tightness between the paths (clamping a
  // free-variable dual can push either to -inf), but each must be a valid
  // lower bound on the common optimum.
  EXPECT_LE(lu.dual_bound, dense.objective + 1e-6 * scale) << tag;
  EXPECT_LE(dense.dual_bound, dense.objective + 1e-6 * scale) << tag;
  EXPECT_LE(fuzz.model.max_violation(lu.x), 1e-6) << tag;
  EXPECT_LE(fuzz.model.max_violation(dense.x), 1e-6) << tag;

  // PDHG: its certificate must never overstate the simplex optimum; when
  // it reports convergence its objective must land within first-order
  // tolerance of the exact optimum.
  PdhgOptions pdhg;
  pdhg.max_iterations = 60000;
  pdhg.tolerance = 1e-6;
  const auto approx = solve_pdhg(fuzz.model, pdhg);
  EXPECT_LE(approx.dual_bound, dense.objective + 1e-6 * scale) << tag;
  // PDHG can stall at a suboptimal stationary point when the model has
  // doubly-unbounded variables (its certificate degrades to -inf there, so
  // the bound stays valid — MC-PERF relaxations never produce free
  // variables). On box-bounded instances a claimed convergence must land
  // on the exact optimum to first-order accuracy.
  if (!fuzz.has_free && approx.status == SolveStatus::Optimal &&
      fuzz.model.max_violation(approx.x) <= 1e-5) {
    EXPECT_NEAR(approx.objective, dense.objective, 1e-2 * scale) << tag;
  }
}

// 200 seeded LPs, sharded so ctest can run the shards in parallel.
TEST(FuzzDifferential, RandomLpsShard0) {
  const std::uint64_t base = test::fuzz_base_seed();
  for (std::uint64_t i = 0; i < 50; ++i) check_case(base, i);
}

TEST(FuzzDifferential, RandomLpsShard1) {
  const std::uint64_t base = test::fuzz_base_seed();
  for (std::uint64_t i = 50; i < 100; ++i) check_case(base, i);
}

TEST(FuzzDifferential, RandomLpsShard2) {
  const std::uint64_t base = test::fuzz_base_seed();
  for (std::uint64_t i = 100; i < 150; ++i) check_case(base, i);
}

TEST(FuzzDifferential, RandomLpsShard3) {
  const std::uint64_t base = test::fuzz_base_seed();
  for (std::uint64_t i = 150; i < 200; ++i) check_case(base, i);
}

// ---------------------------------------------------------------------------
// Real MC-PERF relaxations: the LP family the paper actually solves. These
// are larger and tree-structured — exactly the shape the sparse LU targets.

void check_mcperf(const mcperf::Instance& instance,
                  const mcperf::ClassSpec& spec, const std::string& tag) {
  const auto built = mcperf::build_lp(instance, spec);

  const auto lu = solve_simplex(built.model, lu_options());
  const auto dense = solve_simplex(built.model, dense_options());
  ASSERT_EQ(lu.status, dense.status) << tag;
  // Some class/instance pairs are legitimately infeasible (e.g. reactive
  // creation against cold-start demand); both paths agreeing on that via
  // phase 1 is still a differential check.
  if (lu.status != SolveStatus::Optimal) return;

  const double scale = 1 + std::abs(dense.objective);
  EXPECT_NEAR(lu.objective, dense.objective, 1e-6 * scale) << tag;
  EXPECT_LE(built.model.max_violation(lu.x), 1e-6) << tag;

  PdhgOptions pdhg;
  pdhg.max_iterations = 150000;
  pdhg.tolerance = 1e-6;
  const auto approx = solve_pdhg(built.model, pdhg);
  EXPECT_LE(approx.dual_bound, dense.objective + 1e-6 * scale) << tag;
  if (approx.status == SolveStatus::Optimal) {
    EXPECT_NEAR(approx.objective, dense.objective, 5e-3 * scale) << tag;
  }
}

TEST(McPerfDifferential, LineInstanceAcrossClasses) {
  const auto instance = test::line_instance(5, 3, 4, 0.9);
  check_mcperf(instance, mcperf::classes::general(), "line/general");
  check_mcperf(instance, mcperf::classes::caching(), "line/caching");
  check_mcperf(instance, mcperf::classes::replica_constrained(),
               "line/replica_constrained");
}

TEST(McPerfDifferential, RandomInstanceAcrossClasses) {
  const auto instance = test::random_instance(42);
  check_mcperf(instance, mcperf::classes::general(), "waxman/general");
  check_mcperf(instance, mcperf::classes::cooperative_caching(),
               "waxman/cooperative_caching");
  check_mcperf(instance, mcperf::classes::storage_constrained(),
               "waxman/storage_constrained");
}

// The engine's Auto solver must produce the same certified bound whichever
// basis the simplex uses underneath.
TEST(McPerfDifferential, EngineBoundInvariantToBasis) {
  const auto instance = test::random_instance(7);
  bounds::BoundOptions with_lu;
  with_lu.solver = bounds::BoundOptions::Solver::Simplex;
  with_lu.simplex.basis = SimplexOptions::Basis::SparseLU;
  bounds::BoundOptions with_dense = with_lu;
  with_dense.simplex.basis = SimplexOptions::Basis::DenseInverse;

  const auto a = bounds::compute_bound(instance, mcperf::classes::general(), with_lu);
  const auto b =
      bounds::compute_bound(instance, mcperf::classes::general(), with_dense);
  ASSERT_EQ(a.status, b.status);
  EXPECT_NEAR(a.lower_bound, b.lower_bound, 1e-6 * (1 + std::abs(b.lower_bound)));
}

}  // namespace
}  // namespace wanplace::lp
