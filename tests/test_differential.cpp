// Randomized differential LP harness.
//
// Four independently implemented solve paths — simplex over the
// Forrest-Tomlin basis with dynamic Devex pricing (the default), simplex
// over the product-form eta file with static partial Devex (the previous
// default), simplex over the dense explicit inverse (the seed path,
// bit-identical numerics), and PDHG — are run over a seeded stream of
// random LPs (tests/lp_fuzz.h) and over real MC-PERF relaxations, and must
// agree on status and objective to 1e-7. The simplex paths share neither
// basis algebra nor pricing, so any FT elimination / R-file / eta / Devex
// weight defect shows up as a status or objective split here long before it
// corrupts a paper experiment.
//
// The stream is three-tiered: classic shards (randomized shape/bounds/row
// mix), adversarial shards (pricing ties, near-singular column pairs, long
// pivot sequences — see fuzz_adversarial_lp), and a stress shard that
// replays instances with a tiny refactor period and eta limit so pivot
// sequences run well past 2x the refactor period on every path.
//
// Re-run a failing case locally with WANPLACE_FUZZ_SEED=<base> (the base
// seed is printed in every failure message; per-case seeds are base+offset).
// WANPLACE_FUZZ_COUNT scales every shard (nightly runs use 150 -> 1350+
// instances; the default 60 keeps the default suite over 500).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "bounds/engine.h"
#include "instance_helpers.h"
#include "lp/model.h"
#include "lp/pdhg.h"
#include "lp/simplex.h"
#include "lp_fuzz.h"
#include "mcperf/builder.h"
#include "mcperf/heuristic_class.h"

namespace wanplace::lp {
namespace {

SimplexOptions ft_options() {
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::ForrestTomlin;
  options.pricing = SimplexOptions::Pricing::DevexDynamic;
  return options;
}

SimplexOptions pf_options() {
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::ProductForm;
  options.pricing = SimplexOptions::Pricing::PartialDevex;
  return options;
}

SimplexOptions dense_options() {
  SimplexOptions options;
  options.basis = SimplexOptions::Basis::DenseInverse;
  options.pricing = SimplexOptions::Pricing::PartialDevex;
  return options;
}

/// Stress variant: force the update machinery to be the long pole. Every
/// pivot sequence longer than ~8 iterations runs past 2x the refactor
/// period, the product-form path additionally trips its eta limit, and the
/// FT path trips its fill guard almost immediately.
SimplexOptions stressed(SimplexOptions options) {
  options.refactor_period = 4;
  options.eta_limit = 8;
  options.ft_fill_factor = 1.05;
  return options;
}

/// Run one generated instance through all simplex paths (plus PDHG on
/// optimal instances) and cross-check. `tweak` lets the stress shard
/// tighten the basis-management knobs on every path at once.
void check_instance(const test::FuzzLp& fuzz, const std::string& tag,
                    SimplexOptions (*tweak)(SimplexOptions) = nullptr) {
  auto ft_opts = ft_options();
  auto pf_opts = pf_options();
  auto dense_opts = dense_options();
  if (tweak) {
    ft_opts = tweak(ft_opts);
    pf_opts = tweak(pf_opts);
    dense_opts = tweak(dense_opts);
  }

  const auto ft = solve_simplex(fuzz.model, ft_opts);
  const auto pf = solve_simplex(fuzz.model, pf_opts);
  const auto dense = solve_simplex(fuzz.model, dense_opts);

  // All basis representations must agree on status, always.
  ASSERT_EQ(ft.status, dense.status) << tag;
  ASSERT_EQ(pf.status, dense.status) << tag;

  switch (fuzz.kind) {
    case test::FuzzKind::Infeasible:
      ASSERT_EQ(ft.status, SolveStatus::Infeasible) << tag;
      return;  // PDHG's infeasibility detection is heuristic; skip it.
    case test::FuzzKind::Unbounded:
      ASSERT_EQ(ft.status, SolveStatus::Unbounded) << tag;
      return;
    case test::FuzzKind::Feasible:
      // Feasible by construction: never Infeasible. Free variables with
      // constrained rows can still make the instance legitimately
      // unbounded — all paths must agree on that (checked above).
      ASSERT_NE(ft.status, SolveStatus::Infeasible) << tag;
      break;
  }
  if (ft.status != SolveStatus::Optimal) return;

  const double scale = 1 + std::abs(dense.objective);
  EXPECT_NEAR(ft.objective, dense.objective, 1e-7 * scale) << tag;
  EXPECT_NEAR(pf.objective, dense.objective, 1e-7 * scale) << tag;
  // Certificates may differ in tightness between the paths (clamping a
  // free-variable dual can push any of them to -inf), but each must be a
  // valid lower bound on the common optimum.
  EXPECT_LE(ft.dual_bound, dense.objective + 1e-7 * scale) << tag;
  EXPECT_LE(pf.dual_bound, dense.objective + 1e-7 * scale) << tag;
  EXPECT_LE(dense.dual_bound, dense.objective + 1e-7 * scale) << tag;
  EXPECT_LE(fuzz.model.max_violation(ft.x), 1e-6) << tag;
  EXPECT_LE(fuzz.model.max_violation(pf.x), 1e-6) << tag;
  EXPECT_LE(fuzz.model.max_violation(dense.x), 1e-6) << tag;

  // PDHG: its certificate must never overstate the simplex optimum; when
  // it reports convergence its objective must land within first-order
  // tolerance of the exact optimum.
  PdhgOptions pdhg;
  pdhg.max_iterations = 60000;
  pdhg.tolerance = 1e-6;
  const auto approx = solve_pdhg(fuzz.model, pdhg);
  EXPECT_LE(approx.dual_bound, dense.objective + 1e-6 * scale) << tag;
  // PDHG can stall at a suboptimal stationary point when the model has
  // doubly-unbounded variables (its certificate degrades to -inf there, so
  // the bound stays valid — MC-PERF relaxations never produce free
  // variables). On box-bounded instances a claimed convergence must land
  // on the exact optimum to first-order accuracy.
  if (!fuzz.has_free && approx.status == SolveStatus::Optimal &&
      fuzz.model.max_violation(approx.x) <= 1e-5) {
    EXPECT_NEAR(approx.objective, dense.objective, 1e-2 * scale) << tag;
  }
}

std::string case_tag(const char* family, std::uint64_t base,
                     std::uint64_t offset, const test::FuzzLp& fuzz) {
  return std::string(family) + " base " + std::to_string(base) + " offset " +
         std::to_string(offset) + " (" + std::to_string(fuzz.vars) + "v x " +
         std::to_string(fuzz.rows) + "r)";
}

void check_classic(std::uint64_t base, std::uint64_t offset) {
  const auto fuzz = test::fuzz_lp(base + offset);
  check_instance(fuzz, case_tag("classic", base, offset, fuzz));
}

void check_adversarial(std::uint64_t base, std::uint64_t offset) {
  const auto fuzz = test::fuzz_adversarial_lp(base + offset);
  check_instance(fuzz, case_tag("adversarial", base, offset, fuzz));
}

// Classic shards: 4 x WANPLACE_FUZZ_COUNT (default 60) seeded LPs, sharded
// so ctest can keep the shards separately addressable.
TEST(FuzzDifferential, RandomLpsShard0) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 0; i < n; ++i) check_classic(base, i);
}

TEST(FuzzDifferential, RandomLpsShard1) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = n; i < 2 * n; ++i) check_classic(base, i);
}

TEST(FuzzDifferential, RandomLpsShard2) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 2 * n; i < 3 * n; ++i) check_classic(base, i);
}

TEST(FuzzDifferential, RandomLpsShard3) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 3 * n; i < 4 * n; ++i) check_classic(base, i);
}

// Adversarial shards: pricing-tie / near-singular / long-pivot profiles.
TEST(FuzzAdversarial, TargetedLpsShard0) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 0; i < n; ++i) check_adversarial(base, i);
}

TEST(FuzzAdversarial, TargetedLpsShard1) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = n; i < 2 * n; ++i) check_adversarial(base, i);
}

TEST(FuzzAdversarial, TargetedLpsShard2) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 2 * n; i < 3 * n; ++i) check_adversarial(base, i);
}

TEST(FuzzAdversarial, TargetedLpsShard3) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 3 * n; i < 4 * n; ++i) check_adversarial(base, i);
}

// Warm-start re-optimization shards: solve a base instance cold, perturb a
// seeded subset of its bounds and costs (tests/lp_fuzz.h
// fuzz_warm_perturbed — the planner-phase-2 / per-class-re-solve shape),
// then re-solve the perturbed model three ways: dual simplex warm-started
// from the base basis, cold primal, and PDHG warm-started from the base
// iterates. The warm dual result must match the cold primal to 1e-7 in
// status and objective (the warm path must never change what the solver
// reports, only how fast it gets there), and every PDHG certificate —
// warm or cold — must stay a valid lower bound on the exact optimum to
// the same 1e-7.
void check_warm_pair(std::uint64_t base, std::uint64_t offset) {
  const auto fuzz = test::fuzz_lp(base + offset);
  const auto tag = case_tag("warm", base, offset, fuzz);
  const auto perturbed = test::fuzz_warm_perturbed(fuzz, base + offset);

  const auto seed_sol = solve_simplex(fuzz.model, ft_options());
  const auto cold = solve_simplex(perturbed.model, ft_options());

  auto dual_opts = ft_options();
  dual_opts.method = SimplexOptions::Method::Dual;
  if (!seed_sol.basis.empty()) dual_opts.warm_start = &seed_sol.basis;
  const auto warm = solve_simplex(perturbed.model, dual_opts);

  ASSERT_EQ(warm.status, cold.status) << tag;
  if (cold.status != SolveStatus::Optimal) return;
  const double scale = 1 + std::abs(cold.objective);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7 * scale) << tag;
  EXPECT_LE(warm.dual_bound, cold.objective + 1e-7 * scale) << tag;
  EXPECT_LE(perturbed.model.max_violation(warm.x), 1e-6) << tag;

  PdhgOptions pdhg;
  pdhg.max_iterations = 60000;
  pdhg.tolerance = 1e-6;
  const auto pd_cold = solve_pdhg(perturbed.model, pdhg);
  auto pdhg_warm = pdhg;
  pdhg_warm.warm_x = &seed_sol.x;
  pdhg_warm.warm_y = &seed_sol.y;
  const auto pd_warm = solve_pdhg(perturbed.model, pdhg_warm);
  EXPECT_LE(pd_cold.dual_bound, cold.objective + 1e-7 * scale) << tag;
  EXPECT_LE(pd_warm.dual_bound, cold.objective + 1e-7 * scale) << tag;
  if (!fuzz.has_free && pd_warm.status == SolveStatus::Optimal &&
      perturbed.model.max_violation(pd_warm.x) <= 1e-5) {
    EXPECT_NEAR(pd_warm.objective, cold.objective, 1e-2 * scale) << tag;
  }
}

// 4 x WANPLACE_FUZZ_COUNT (default 60) = 240 perturbed-bound pairs.
TEST(FuzzWarm, PerturbedBoundPairsShard0) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 0; i < n; ++i) check_warm_pair(base, i);
}

TEST(FuzzWarm, PerturbedBoundPairsShard1) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = n; i < 2 * n; ++i) check_warm_pair(base, i);
}

TEST(FuzzWarm, PerturbedBoundPairsShard2) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 2 * n; i < 3 * n; ++i) check_warm_pair(base, i);
}

TEST(FuzzWarm, PerturbedBoundPairsShard3) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 3 * n; i < 4 * n; ++i) check_warm_pair(base, i);
}

// Stress shard: replay a seeded mix of classic and adversarial instances
// with refactor_period=4 / eta_limit=8 / ft_fill_factor=1.05 on every
// path. The long-pivot profiles routinely take 30+ pivots here, i.e. far
// past 2x the refactor period, so eta replay, FT spike elimination, the
// fill guard and the fallback-to-refactorize path all fire constantly.
TEST(FuzzStress, TinyRefactorPeriodAcrossBases) {
  const std::uint64_t base = test::fuzz_base_seed();
  const std::uint64_t n = test::fuzz_shard_count();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      const auto fuzz = test::fuzz_lp(base + 4 * n + i);
      check_instance(fuzz, case_tag("stress/classic", base, 4 * n + i, fuzz),
                     &stressed);
    } else {
      const auto fuzz = test::fuzz_adversarial_lp(base + 4 * n + i);
      check_instance(fuzz,
                     case_tag("stress/adversarial", base, 4 * n + i, fuzz),
                     &stressed);
    }
  }
}

// ---------------------------------------------------------------------------
// Real MC-PERF relaxations: the LP family the paper actually solves. These
// are larger and tree-structured — exactly the shape the sparse bases
// target.

void check_mcperf(const mcperf::Instance& instance,
                  const mcperf::ClassSpec& spec, const std::string& tag) {
  const auto built = mcperf::build_lp(instance, spec);

  const auto ft = solve_simplex(built.model, ft_options());
  const auto pf = solve_simplex(built.model, pf_options());
  const auto dense = solve_simplex(built.model, dense_options());
  ASSERT_EQ(ft.status, dense.status) << tag;
  ASSERT_EQ(pf.status, dense.status) << tag;
  // Some class/instance pairs are legitimately infeasible (e.g. reactive
  // creation against cold-start demand); all paths agreeing on that via
  // phase 1 is still a differential check.
  if (ft.status != SolveStatus::Optimal) return;

  const double scale = 1 + std::abs(dense.objective);
  EXPECT_NEAR(ft.objective, dense.objective, 1e-7 * scale) << tag;
  EXPECT_NEAR(pf.objective, dense.objective, 1e-7 * scale) << tag;
  EXPECT_LE(built.model.max_violation(ft.x), 1e-6) << tag;
  EXPECT_LE(built.model.max_violation(pf.x), 1e-6) << tag;

  PdhgOptions pdhg;
  pdhg.max_iterations = 150000;
  pdhg.tolerance = 1e-6;
  const auto approx = solve_pdhg(built.model, pdhg);
  EXPECT_LE(approx.dual_bound, dense.objective + 1e-6 * scale) << tag;
  if (approx.status == SolveStatus::Optimal) {
    EXPECT_NEAR(approx.objective, dense.objective, 5e-3 * scale) << tag;
  }
}

TEST(McPerfDifferential, LineInstanceAcrossClasses) {
  const auto instance = test::line_instance(5, 3, 4, 0.9);
  check_mcperf(instance, mcperf::classes::general(), "line/general");
  check_mcperf(instance, mcperf::classes::caching(), "line/caching");
  check_mcperf(instance, mcperf::classes::replica_constrained(),
               "line/replica_constrained");
}

TEST(McPerfDifferential, RandomInstanceAcrossClasses) {
  const auto instance = test::random_instance(42);
  check_mcperf(instance, mcperf::classes::general(), "waxman/general");
  check_mcperf(instance, mcperf::classes::cooperative_caching(),
               "waxman/cooperative_caching");
  check_mcperf(instance, mcperf::classes::storage_constrained(),
               "waxman/storage_constrained");
}

// The engine's Auto solver must produce the same certified bound whichever
// basis the simplex uses underneath.
TEST(McPerfDifferential, EngineBoundInvariantToBasis) {
  const auto instance = test::random_instance(7);
  const SimplexOptions::Basis bases[] = {SimplexOptions::Basis::ForrestTomlin,
                                         SimplexOptions::Basis::ProductForm,
                                         SimplexOptions::Basis::DenseInverse};
  bounds::BoundOptions reference_opts;
  reference_opts.solver = bounds::BoundOptions::Solver::Simplex;
  reference_opts.simplex.basis = SimplexOptions::Basis::DenseInverse;
  const auto reference = bounds::compute_bound(
      instance, mcperf::classes::general(), reference_opts);
  for (const auto basis : bases) {
    bounds::BoundOptions options;
    options.solver = bounds::BoundOptions::Solver::Simplex;
    options.simplex.basis = basis;
    const auto bound =
        bounds::compute_bound(instance, mcperf::classes::general(), options);
    ASSERT_EQ(bound.status, reference.status) << static_cast<int>(basis);
    EXPECT_NEAR(bound.lower_bound, reference.lower_bound,
                1e-7 * (1 + std::abs(reference.lower_bound)))
        << static_cast<int>(basis);
  }
}

}  // namespace
}  // namespace wanplace::lp
