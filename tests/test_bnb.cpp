// Branch-and-bound exact solver: agreement with the exhaustive oracle on
// tiny instances, and the LP <= B&B <= rounded sandwich on mid-size ones.
#include <gtest/gtest.h>

#include "bounds/branch_and_bound.h"
#include "bounds/engine.h"
#include "bounds/exact.h"
#include "instance_helpers.h"
#include "util/check.h"

namespace wanplace::bounds {
namespace {

using test::line_instance;
using test::random_instance;

TEST(Bnb, MatchesExhaustiveOnTinyInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto instance = line_instance(3, 2, 2, 0.8);
    Rng rng(seed);
    for (std::size_t n = 0; n < 2; ++n)
      for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t k = 0; k < 2; ++k)
          instance.demand.read(n, i, k) =
              static_cast<double>(rng.uniform_index(5));
    if (instance.demand.total_reads() == 0) continue;

    const auto spec = mcperf::classes::general();
    const auto exhaustive = solve_exact(instance, spec);
    const auto bnb = solve_branch_and_bound(instance, spec);
    ASSERT_EQ(bnb.feasible, exhaustive.feasible) << "seed " << seed;
    if (exhaustive.feasible) {
      ASSERT_TRUE(bnb.proven_optimal) << "seed " << seed;
      EXPECT_NEAR(bnb.cost, exhaustive.cost, 1e-6) << "seed " << seed;
    }
  }
}

TEST(Bnb, MatchesExhaustiveUnderClassConstraints) {
  auto instance = line_instance(3, 2, 2, 0.7);
  instance.demand.read(0, 0, 0) = 4;
  instance.demand.read(1, 1, 1) = 3;
  instance.demand.read(0, 1, 0) = 2;
  for (const auto& spec : {mcperf::classes::storage_constrained(),
                           mcperf::classes::replica_constrained(),
                           mcperf::classes::reactive()}) {
    const auto exhaustive = solve_exact(instance, spec);
    const auto bnb = solve_branch_and_bound(instance, spec);
    ASSERT_EQ(bnb.feasible, exhaustive.feasible) << spec.name;
    if (exhaustive.feasible)
      EXPECT_NEAR(bnb.cost, exhaustive.cost, 1e-6) << spec.name;
  }
}

TEST(Bnb, SandwichedBetweenLpAndRounding) {
  for (std::uint64_t seed : {2u, 12u, 22u}) {
    const auto instance = random_instance(seed, 5, 3, 4, 0.85, 300);
    const auto spec = mcperf::classes::general();

    BoundOptions options;
    options.solver = BoundOptions::Solver::Simplex;
    const auto detail = compute_bound_detail(instance, spec, options);
    if (!detail.bound.achievable) continue;

    BnbOptions bnb_options;
    bnb_options.time_limit_s = 20;
    const auto bnb = solve_branch_and_bound(instance, spec, bnb_options);
    ASSERT_TRUE(bnb.feasible) << "seed " << seed;
    EXPECT_GE(bnb.cost, detail.bound.lower_bound - 1e-6) << "seed " << seed;
    if (detail.bound.rounded_feasible && bnb.proven_optimal)
      EXPECT_LE(bnb.cost, detail.bound.rounded_cost + 1e-6)
          << "seed " << seed;
  }
}

TEST(Bnb, InfeasibleDetected) {
  auto instance = line_instance(4, 1, 1, 1.0);
  instance.demand.read(0, 0, 0) = 1;
  const auto bnb =
      solve_branch_and_bound(instance, mcperf::classes::reactive());
  EXPECT_FALSE(bnb.feasible);
}

TEST(Bnb, BudgetLimitsStillYieldValidBound) {
  const auto instance = random_instance(5, 5, 3, 4, 0.9, 300);
  BnbOptions tight;
  tight.max_nodes = 2;  // prune almost immediately
  const auto bnb = solve_branch_and_bound(
      instance, mcperf::classes::general(), tight);
  EXPECT_FALSE(bnb.proven_optimal);
  // The root relaxation bound is still a valid lower bound.
  BnbOptions generous;
  generous.time_limit_s = 30;
  const auto full = solve_branch_and_bound(
      instance, mcperf::classes::general(), generous);
  if (full.proven_optimal)
    EXPECT_LE(bnb.lower_bound, full.cost + 1e-6);
}

TEST(Bnb, RejectsAvgLatencyGoal) {
  auto instance = line_instance(3, 1, 1, 0.9);
  instance.goal = mcperf::AvgLatencyGoal{100};
  EXPECT_THROW(
      solve_branch_and_bound(instance, mcperf::classes::general()),
      InvalidArgument);
}

}  // namespace
}  // namespace wanplace::bounds
