#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/shortest_paths.h"
#include "heuristics/cache.h"
#include "heuristics/interval.h"
#include "util/check.h"

namespace wanplace::heuristics {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  EXPECT_FALSE(cache.insert(1).has_value());
  EXPECT_FALSE(cache.insert(2).has_value());
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lru, TouchRefreshesRecency) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.touch(1);  // now 2 is the LRU entry
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2);
  EXPECT_TRUE(cache.contains(1));
}

TEST(Lru, ZeroCapacityNeverStores) {
  LruCache cache(0);
  EXPECT_FALSE(cache.insert(1).has_value());
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Lru, RejectsBadOperations) {
  LruCache cache(2);
  cache.insert(1);
  EXPECT_THROW(cache.insert(1), InvalidArgument);  // already resident
  EXPECT_THROW(cache.touch(9), InvalidArgument);   // not resident
}

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.touch(1);
  cache.touch(1);
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2);
}

TEST(Lfu, FrequencyTieBreaksByRecency) {
  LfuCache cache(2);
  cache.insert(1);
  cache.insert(2);  // equal frequency; 1 is older
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
}

TEST(Factories, ProduceRequestedCapacity) {
  const auto lru = lru_factory()(5);
  EXPECT_EQ(lru->capacity(), 5u);
  const auto lfu = lfu_factory()(3);
  EXPECT_EQ(lfu->capacity(), 3u);
}

// ---------------------------------------------------------------------------
// Interval heuristics. Topology: line of 4 nodes, node 3 = origin.

struct Fixture {
  BoolMatrix dist;
  graph::NodeId origin = 3;

  Fixture() {
    const auto topology = graph::line(4, 100, 10);
    const auto latencies = graph::all_pairs_latencies(topology);
    dist = graph::within_threshold(latencies, 150);
  }
};

TEST(GreedyGlobal, ReactiveColdStartPlacesNothing) {
  Fixture fix;
  workload::Demand demand(4, 3, 2);
  demand.read(0, 0, 0) = 10;
  GreedyGlobalPlacement greedy(fix.dist, fix.origin, {.capacity = 2});
  bounds::Placement placement(4, 3, 2);
  greedy.place_interval(0, demand, placement);
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t k = 0; k < 2; ++k) EXPECT_FALSE(placement(n, 0, k));
}

TEST(GreedyGlobal, PlacesPopularObjectNearDemand) {
  Fixture fix;
  workload::Demand demand(4, 2, 2);
  demand.read(0, 0, 0) = 10;  // node 0 wants object 0
  GreedyGlobalPlacement greedy(fix.dist, fix.origin, {.capacity = 1});
  bounds::Placement placement(4, 2, 2);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  // Object 0 must be stored within reach of node 0 (nodes 0 or 1).
  EXPECT_TRUE(placement(0, 1, 0) || placement(1, 1, 0));
}

TEST(GreedyGlobal, RespectsCapacity) {
  Fixture fix;
  workload::Demand demand(4, 2, 5);
  for (std::size_t k = 0; k < 5; ++k) demand.read(0, 0, k) = 5;
  GreedyGlobalPlacement greedy(fix.dist, fix.origin, {.capacity = 2});
  bounds::Placement placement(4, 2, 5);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  for (std::size_t n = 0; n < 4; ++n) {
    std::size_t used = 0;
    for (std::size_t k = 0; k < 5; ++k) used += placement(n, 1, k);
    EXPECT_LE(used, 2u);
  }
}

TEST(GreedyGlobal, StablePlacementAvoidsChurn) {
  Fixture fix;
  workload::Demand demand(4, 4, 2);
  for (std::size_t i = 0; i < 4; ++i) demand.read(0, i, 0) = 10;
  GreedyGlobalPlacement greedy(fix.dist, fix.origin, {.capacity = 1});
  bounds::Placement placement(4, 4, 2);
  for (std::size_t i = 0; i < 4; ++i) greedy.place_interval(i, demand, placement);
  // After the first placement, the object should stay on the same node.
  std::size_t creations = 0;
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t i = 0; i < 4; ++i)
      if (placement(n, i, 0) && (i == 0 || !placement(n, i - 1, 0)))
        ++creations;
  EXPECT_EQ(creations, 1u);
}

TEST(GreedyGlobal, DoesNotDuplicateOriginCoverage) {
  Fixture fix;
  workload::Demand demand(4, 2, 1);
  demand.read(2, 0, 0) = 10;  // node 2 is adjacent to the origin
  GreedyGlobalPlacement greedy(fix.dist, fix.origin, {.capacity = 1});
  bounds::Placement placement(4, 2, 1);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  // Node 2's demand is already covered by the origin: no replica needed.
  for (std::size_t n = 0; n < 4; ++n) EXPECT_FALSE(placement(n, 1, 0));
}

TEST(GreedyGlobal, ProactiveCoversFirstInterval) {
  Fixture fix;
  workload::Demand demand(4, 2, 1);
  demand.read(0, 0, 0) = 10;
  GreedyGlobalPlacement proactive(
      fix.dist, fix.origin, {.capacity = 1, .proactive = true});
  bounds::Placement placement(4, 2, 1);
  proactive.place_interval(0, demand, placement);
  // Prefetching sees interval 0's demand and places before it happens.
  EXPECT_TRUE(placement(0, 0, 0) || placement(1, 0, 0));
}

TEST(ReplicaGreedy, PlacesConfiguredReplicaCount) {
  Fixture fix;
  workload::Demand demand(4, 2, 1);
  demand.read(0, 0, 0) = 5;
  demand.read(1, 0, 0) = 5;
  ReplicaGreedyPlacement greedy(fix.dist, fix.origin, {.replicas = 2});
  bounds::Placement placement(4, 2, 1);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  std::size_t replicas = 0;
  for (std::size_t n = 0; n < 4; ++n) replicas += placement(n, 1, 0);
  EXPECT_GE(replicas, 1u);
  EXPECT_LE(replicas, 2u);
}

TEST(ReplicaGreedy, SkipsUnseenObjects) {
  Fixture fix;
  workload::Demand demand(4, 2, 2);
  demand.read(0, 0, 0) = 5;  // object 1 never accessed
  ReplicaGreedyPlacement greedy(fix.dist, fix.origin, {.replicas = 1});
  bounds::Placement placement(4, 2, 2);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t i = 0; i < 2; ++i) EXPECT_FALSE(placement(n, i, 1));
}

TEST(ReplicaGreedy, CoversDistinctNeighborhoods) {
  Fixture fix;
  workload::Demand demand(4, 2, 1);
  demand.read(0, 0, 0) = 5;  // far side of the line
  ReplicaGreedyPlacement greedy(fix.dist, fix.origin, {.replicas = 1});
  bounds::Placement placement(4, 2, 1);
  greedy.place_interval(0, demand, placement);
  greedy.place_interval(1, demand, placement);
  EXPECT_TRUE(placement(0, 1, 0) || placement(1, 1, 0));
}

TEST(Random, ReactiveAndStable) {
  Fixture fix;
  workload::Demand demand(4, 3, 2);
  demand.read(0, 0, 0) = 5;
  RandomPlacement random(fix.origin, 1, 42);
  bounds::Placement placement(4, 3, 2);
  random.place_interval(0, demand, placement);
  for (std::size_t n = 0; n < 4; ++n) EXPECT_FALSE(placement(n, 0, 0));
  random.place_interval(1, demand, placement);
  random.place_interval(2, demand, placement);
  // Placed somewhere after being seen, and stays put.
  std::size_t at1 = 0, at2 = 0;
  for (std::size_t n = 0; n < 4; ++n) {
    at1 += placement(n, 1, 0);
    at2 += placement(n, 2, 0);
  }
  EXPECT_EQ(at1, 1u);
  EXPECT_EQ(at2, 1u);
  for (std::size_t n = 0; n < 4; ++n)
    EXPECT_EQ(placement(n, 1, 0), placement(n, 2, 0));
}

}  // namespace
}  // namespace wanplace::heuristics
