// Shared MC-PERF instance builders for the test suites.
#pragma once

#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/shortest_paths.h"
#include "mcperf/instance.h"
#include "tree/family.h"
#include "util/rng.h"
#include "workload/demand.h"
#include "workload/generators.h"

namespace wanplace::test {

/// A line topology of `nodes` sites with 100ms links and Tlat 150ms, so each
/// node reaches exactly itself and its direct neighbors. The last node is
/// the origin unless `with_origin` is false.
inline mcperf::Instance line_instance(std::size_t nodes,
                                      std::size_t intervals,
                                      std::size_t objects, double tqos,
                                      bool with_origin = true) {
  mcperf::Instance instance;
  const auto topology = graph::line(nodes, 100, 10);
  instance.latencies = graph::all_pairs_latencies(topology);
  instance.dist = graph::within_threshold(instance.latencies, 150);
  instance.demand = workload::Demand(nodes, intervals, objects);
  instance.goal = mcperf::QosGoal{tqos};
  if (with_origin) instance.origin = static_cast<graph::NodeId>(nodes - 1);
  return instance;
}

/// A small randomly generated instance over a Waxman topology with a Zipf
/// workload — used by property tests.
inline mcperf::Instance random_instance(std::uint64_t seed,
                                        std::size_t nodes = 6,
                                        std::size_t intervals = 4,
                                        std::size_t objects = 5,
                                        double tqos = 0.9,
                                        std::size_t requests = 400) {
  Rng rng(seed);
  graph::WaxmanParams wax;
  wax.node_count = nodes;
  const auto topology = graph::waxman(wax, rng);

  mcperf::Instance instance;
  instance.latencies = graph::all_pairs_latencies(topology);
  instance.dist = graph::within_threshold(instance.latencies, 150);

  workload::WebParams web;
  web.shape.node_count = nodes;
  web.shape.object_count = objects;
  web.shape.request_count = requests;
  web.shape.duration_s = 3600.0 * intervals;
  const auto trace = workload::generate_web(web, rng);
  instance.demand = workload::aggregate(trace, intervals);
  instance.goal = mcperf::QosGoal{tqos};
  instance.origin = 0;
  return instance;
}

/// Build an MC-PERF instance over a tree topology rooted (and origin'd) at
/// node 0: latency/dist matrices from the tree paths, Instance::links from
/// tree::extract_links (carrying per-link bandwidth caps), single or
/// multi-interval demand left all-zero for the caller to fill.
/// Requires linking wanplace_tree.
inline mcperf::Instance tree_instance(
    const graph::Topology& topology, double tlat_ms, std::size_t intervals,
    std::size_t objects, double tqos,
    mcperf::QosScope scope = mcperf::QosScope::PerUserPerObject) {
  mcperf::Instance instance;
  instance.latencies = graph::all_pairs_latencies(topology);
  instance.dist = graph::within_threshold(instance.latencies, tlat_ms);
  instance.demand =
      workload::Demand(topology.node_count(), intervals, objects);
  instance.goal = mcperf::QosGoal{tqos, scope};
  instance.origin = 0;
  instance.links = tree::extract_links(topology, 0, tlat_ms);
  return instance;
}

}  // namespace wanplace::test
