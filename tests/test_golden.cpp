// Golden-fixture regression tests for the per-class lower bounds.
//
// A small fixed MC-PERF fixture (4-node line, 3 intervals, 3 objects) is
// solved for a representative slice of heuristic classes and the certified
// lower bounds are compared against frozen values:
//   - with Basis::DenseInverse and the seed's static PartialDevex pricing
//     the entire pipeline is deterministic integer and double arithmetic
//     with a fixed operation order, so the bound must reproduce BIT FOR
//     BIT — any change is a semantic change to the seed numerics and must
//     be deliberate;
//   - with the sparse bases (ProductForm eta file, and the default
//     ForrestTomlin with dynamic Devex pricing) the pivot order differs,
//     so the bound must agree to 1e-7 relative — those paths are "same
//     answer, different arithmetic";
//   - the dynamic-Devex iteration counts themselves are pinned (kDevex
//     below, plus Beale): pricing is deterministic, so a changed count
//     means the pricing rule changed and the fixture must be deliberately
//     regenerated.
//
// To regenerate after a DELIBERATE semantic change, run this binary with
// WANPLACE_PRINT_GOLDEN=1 and paste the emitted tables over kGolden /
// kDevex.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bounds/engine.h"
#include "instance_helpers.h"
#include "mcperf/heuristic_class.h"
#include "tree/tree_dp.h"

namespace wanplace {
namespace {

/// The frozen fixture: a 4-node line (origin at node 3), 3 intervals, 3
/// objects, Tqos = 0.6 (achievable for every golden class), with a deterministic non-uniform read/write pattern
/// and a cost model that exercises storage, creation and update terms.
mcperf::Instance golden_instance() {
  auto instance = test::line_instance(4, 3, 3, 0.6);
  instance.costs.alpha = 1;
  instance.costs.beta = 2;
  instance.costs.delta = 0.25;
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t k = 0; k < 3; ++k) {
        instance.demand.read(n, i, k) =
            static_cast<double>(1 + (n + 2 * i + 3 * k) % 4);
        instance.demand.write(n, i, k) = (n + i + k) % 2 ? 0.5 : 0.0;
      }
    }
  }
  return instance;
}

struct GoldenCase {
  const char* name;            // preset name in mcperf::classes
  double lower_bound;          // frozen DenseInverse bound
  double max_achievable_qos;   // frozen achievability value
};

// Frozen values for golden_instance(), DenseInverse basis,
// Solver::Simplex. Printed with %.17g so they round-trip exactly.
constexpr GoldenCase kGolden[] = {
    {"general", 9.680909090909088, 1},
    {"storage_constrained", 11.727142857142846, 1},
    {"replica_constrained", 10.349999999999994, 1},
    {"replica_constrained_per_object", 9.6809090909090898, 1},
    {"caching", 36.824999999999989, 0.63636363636363635},
    {"cooperative_caching", 19.000000000000004, 0.63636363636363635},
    {"neighborhood_caching", 19.000000000000004, 0.63636363636363635},
    {"reactive", 12.5, 0.63636363636363635},
};

mcperf::ClassSpec spec_by_name(const std::string& name) {
  using namespace mcperf::classes;
  if (name == "general") return general();
  if (name == "storage_constrained") return storage_constrained();
  if (name == "replica_constrained") return replica_constrained();
  if (name == "replica_constrained_per_object")
    return replica_constrained_per_object();
  if (name == "caching") return caching();
  if (name == "cooperative_caching") return cooperative_caching();
  if (name == "neighborhood_caching") return neighborhood_caching();
  if (name == "reactive") return reactive();
  ADD_FAILURE() << "unknown golden class " << name;
  return general();
}

bounds::BoundOptions golden_options(lp::SimplexOptions::Basis basis) {
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;
  options.simplex.basis = basis;
  // The kGolden table was frozen under the seed's static pricing rule; pin
  // it explicitly so the DenseInverse fixtures stay bit-for-bit even though
  // the solver default moved to DevexDynamic.
  options.simplex.pricing = lp::SimplexOptions::Pricing::PartialDevex;
  return options;
}

bounds::BoundOptions devex_options() {
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;
  options.simplex.basis = lp::SimplexOptions::Basis::ForrestTomlin;
  options.simplex.pricing = lp::SimplexOptions::Pricing::DevexDynamic;
  return options;
}

TEST(Golden, DenseInverseBoundsBitForBit) {
  const auto instance = golden_instance();
  const bool print = std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr;
  for (const auto& g : kGolden) {
    const auto bound = bounds::compute_bound(
        instance, spec_by_name(g.name),
        golden_options(lp::SimplexOptions::Basis::DenseInverse));
    if (print) {
      std::printf("    {\"%s\", %.17g, %.17g},\n", g.name, bound.lower_bound,
                  bound.max_achievable_qos);
      continue;
    }
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal) << g.name;
    // Exact comparison on purpose: see the file comment.
    EXPECT_EQ(bound.lower_bound, g.lower_bound) << g.name;
    EXPECT_EQ(bound.max_achievable_qos, g.max_achievable_qos) << g.name;
  }
}

TEST(Golden, ProductFormBoundsMatchTo1e7) {
  const auto instance = golden_instance();
  if (std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr) GTEST_SKIP();
  for (const auto& g : kGolden) {
    const auto bound = bounds::compute_bound(
        instance, spec_by_name(g.name),
        golden_options(lp::SimplexOptions::Basis::ProductForm));
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal) << g.name;
    EXPECT_NEAR(bound.lower_bound, g.lower_bound,
                1e-7 * (1 + std::abs(g.lower_bound)))
        << g.name;
    EXPECT_EQ(bound.max_achievable_qos, g.max_achievable_qos) << g.name;
  }
}

TEST(Golden, ForrestTomlinDynamicDevexBoundsMatchTo1e7) {
  const auto instance = golden_instance();
  if (std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr) GTEST_SKIP();
  for (const auto& g : kGolden) {
    const auto bound =
        bounds::compute_bound(instance, spec_by_name(g.name), devex_options());
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal) << g.name;
    EXPECT_NEAR(bound.lower_bound, g.lower_bound,
                1e-7 * (1 + std::abs(g.lower_bound)))
        << g.name;
    EXPECT_EQ(bound.max_achievable_qos, g.max_achievable_qos) << g.name;
  }
}

// ---------------------------------------------------------------------------
// Dynamic-Devex behavioral fixtures: the pricing rule is deterministic, so
// the phase-1+phase-2 iteration count under ForrestTomlin + DevexDynamic is
// a frozen property of the implementation. A drifting count means the
// pricing (or basis-management) semantics changed — deliberate changes
// regenerate the table via WANPLACE_PRINT_GOLDEN=1.

struct DevexCase {
  const char* name;        // preset name in mcperf::classes
  std::size_t iterations;  // frozen simplex iteration count
  double lower_bound;      // frozen objective (1e-9 relative on replay)
};

constexpr DevexCase kDevex[] = {
    {"general", 94, 9.6809090909090898},
    {"storage_constrained", 108, 11.727142857142855},
    {"replica_constrained", 100, 10.349999999999998},
    {"caching", 73, 36.824999999999989},
    {"cooperative_caching", 96, 19},
    {"reactive", 97, 12.5},
};

TEST(Golden, DynamicDevexIterationCountsPinned) {
  const auto instance = golden_instance();
  const bool print = std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr;
  for (const auto& g : kDevex) {
    const auto bound =
        bounds::compute_bound(instance, spec_by_name(g.name), devex_options());
    if (print) {
      std::printf("    {\"%s\", %zu, %.17g},\n", g.name,
                  bound.solver_iterations, bound.lower_bound);
      continue;
    }
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal) << g.name;
    EXPECT_EQ(bound.solver_iterations, g.iterations) << g.name;
    EXPECT_NEAR(bound.lower_bound, g.lower_bound,
                1e-9 * (1 + std::abs(g.lower_bound)))
        << g.name;
  }
}

// Beale's cycling LP under the default configuration: the stall detector +
// dynamic Devex must terminate at the known optimum in a pinned number of
// pivots. (Same model as tests/test_lp.cpp beale_cycling_lp.)
TEST(Golden, DynamicDevexBealePinned) {
  lp::LpModel model;
  const auto x1 = model.add_variable(0, lp::kInfinity, -0.75);
  const auto x2 = model.add_variable(0, lp::kInfinity, 150);
  const auto x3 = model.add_variable(0, lp::kInfinity, -0.02);
  const auto x4 = model.add_variable(0, lp::kInfinity, 6);
  model.add_row(lp::RowType::Le, 0, {x1, x2, x3, x4}, {0.25, -60, -0.04, 9});
  model.add_row(lp::RowType::Le, 0, {x1, x2, x3, x4}, {0.5, -90, -0.02, 3});
  model.add_row(lp::RowType::Le, 1, {x3}, {1});

  lp::SimplexOptions options;
  options.basis = lp::SimplexOptions::Basis::ForrestTomlin;
  options.pricing = lp::SimplexOptions::Pricing::DevexDynamic;
  const auto sol = lp::solve_simplex(model, options);
  if (std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr) {
    std::printf("    beale: iterations=%zu objective=%.17g\n", sol.iterations,
                sol.objective);
    GTEST_SKIP();
  }
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_EQ(sol.iterations, std::size_t{3});
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

// ---------------------------------------------------------------------------
// Dual-simplex behavioral fixtures: the dual pricing rule (largest primal
// infeasibility scaled by dual Devex row weights) and the bound-flipping
// ratio test are deterministic, so the cold dual solve's iteration count on
// the same fixture is a frozen property of the implementation exactly like
// the primal kDevex table. MC-PERF costs are non-negative, so the slack
// basis is dual feasible and the cold dual path runs without falling back
// to the primal. Regenerate with WANPLACE_PRINT_GOLDEN=1 after deliberate
// changes.

struct DualCase {
  const char* name;        // preset name in mcperf::classes
  std::size_t iterations;  // frozen dual-simplex iteration count
  double lower_bound;      // frozen objective (1e-9 relative on replay)
};

constexpr DualCase kDual[] = {
    {"general", 52, 9.6809090909090898},
    {"storage_constrained", 69, 11.727142857142853},
    {"replica_constrained", 50, 10.35},
    {"caching", 46, 36.824999999999989},
    {"cooperative_caching", 72, 19},
    {"reactive", 46, 12.5},
};

bounds::BoundOptions dual_golden_options() {
  auto options = devex_options();
  options.simplex.method = lp::SimplexOptions::Method::Dual;
  return options;
}

TEST(Golden, DualSimplexIterationCountsPinned) {
  const auto instance = golden_instance();
  const bool print = std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr;
  for (const auto& g : kDual) {
    const auto bound = bounds::compute_bound(instance, spec_by_name(g.name),
                                             dual_golden_options());
    if (print) {
      std::printf("    {\"%s\", %zu, %.17g},\n", g.name,
                  bound.solver_iterations, bound.lower_bound);
      continue;
    }
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal) << g.name;
    EXPECT_EQ(bound.solver_iterations, g.iterations) << g.name;
    EXPECT_NEAR(bound.lower_bound, g.lower_bound,
                1e-9 * (1 + std::abs(g.lower_bound)))
        << g.name;
  }
}

// Beale's LP solved by the cold dual simplex: all costs make the slack
// basis dual infeasible on x1/x3 but the repair flips cannot help (both are
// unbounded above), so this exercises the transparent fallback too when the
// pinned count drifts — the pin asserts the documented behavior either way.
TEST(Golden, DualSimplexBealePinned) {
  lp::LpModel model;
  const auto x1 = model.add_variable(0, lp::kInfinity, -0.75);
  const auto x2 = model.add_variable(0, lp::kInfinity, 150);
  const auto x3 = model.add_variable(0, lp::kInfinity, -0.02);
  const auto x4 = model.add_variable(0, lp::kInfinity, 6);
  model.add_row(lp::RowType::Le, 0, {x1, x2, x3, x4}, {0.25, -60, -0.04, 9});
  model.add_row(lp::RowType::Le, 0, {x1, x2, x3, x4}, {0.5, -90, -0.02, 3});
  model.add_row(lp::RowType::Le, 1, {x3}, {1});

  lp::SimplexOptions options;
  options.basis = lp::SimplexOptions::Basis::ForrestTomlin;
  options.pricing = lp::SimplexOptions::Pricing::DevexDynamic;
  options.method = lp::SimplexOptions::Method::Dual;
  const auto sol = lp::solve_simplex(model, options);
  if (std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr) {
    std::printf("    beale-dual: iterations=%zu objective=%.17g\n",
                sol.iterations, sol.objective);
    GTEST_SKIP();
  }
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_EQ(sol.iterations, std::size_t{3});
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

// ---------------------------------------------------------------------------
// Tree-family fixtures: six fixed tree instances pinning the exact DP
// optimum (deterministic integer/double arithmetic — bit-for-bit), the
// DenseInverse LP lower bound (bit-for-bit) and the DevexDynamic simplex
// iteration count. The capped-closest fixture additionally certifies the
// acceptance property that binding bandwidth rows make the true optimum
// STRICTLY tighter than the unconstrained bound. Regenerate deliberately
// with WANPLACE_PRINT_GOLDEN=1 as for kGolden.

struct GoldenTreeFixture {
  mcperf::Instance instance;
  mcperf::ClassSpec spec;
};

GoldenTreeFixture golden_tree(std::size_t index) {
  graph::TreeParams params;
  params.local_latency_ms = 10;
  Rng rng(1);
  GoldenTreeFixture fx;
  switch (index) {
    case 0: {  // star-global: fanout-3 star, 2 objects, full coverage
      params.depth = 1;
      params.fanout = 3;
      params.level_latency_ms = {100};
      const auto topology = graph::tree(params, rng);
      // Tlat 90 < the 100ms up-links: every demanding leaf must self-store.
      fx.instance = test::tree_instance(topology, 90, 1, 2, 1.0);
      fx.spec = mcperf::classes::general();
      break;
    }
    case 1: {  // binary-global: depth-2 binary tree, tqos 0.9 per (n,k)
      params.depth = 2;
      params.fanout = 2;
      params.level_latency_ms = {100, 50};
      const auto topology = graph::tree(params, rng);
      // Tlat 120: leaves reach their parent (50) but not the root (150).
      fx.instance = test::tree_instance(topology, 120, 1, 2, 0.9);
      fx.spec = mcperf::classes::general();
      break;
    }
    case 2: {  // path-closest: 4-node chain under the closest policy
      params.depth = 3;
      params.fanout = 1;
      params.level_latency_ms = {100, 50, 50};
      const auto topology = graph::tree(params, rng);
      fx.instance = test::tree_instance(topology, 120, 1, 1, 1.0);
      fx.spec = mcperf::classes::closest();
      break;
    }
    case 3: {  // binary-closest-capped: binding caps on the root links
      params.depth = 2;
      params.fanout = 2;
      params.level_latency_ms = {100, 50};
      params.level_bandwidth = {4, 0};
      const auto topology = graph::tree(params, rng);
      fx.instance = test::tree_instance(topology, 250, 1, 1, 1.0);
      fx.spec = mcperf::classes::closest();
      break;
    }
    case 4: {  // ternary-neighborhood: per-level storage-cost profile
      params.depth = 2;
      params.fanout = 3;
      params.level_latency_ms = {70, 30};
      const auto topology = graph::tree(params, rng);
      // Tlat 90: mid nodes reach the root (70) but leaves do not (100).
      fx.instance = test::tree_instance(topology, 90, 1, 2, 1.0);
      fx.spec = mcperf::classes::general();
      fx.spec.name = "neighborhood";
      fx.spec.knowledge = mcperf::Knowledge::Neighborhood;
      fx.instance.storage_scale.assign(fx.instance.node_count(), 1.0);
      for (std::size_t n = 1; n < fx.instance.node_count(); ++n)
        fx.instance.storage_scale[n] = n <= 3 ? 2.0 : 0.5;
      break;
    }
    default: {  // star-reactive: single interval, origin radius covers all
      params.depth = 1;
      params.fanout = 2;
      params.level_latency_ms = {100};
      const auto topology = graph::tree(params, rng);
      fx.instance = test::tree_instance(topology, 150, 1, 1, 1.0);
      fx.spec = mcperf::classes::reactive();
      break;
    }
  }
  auto& instance = fx.instance;
  instance.costs.alpha = 1;
  instance.costs.beta = 2;
  instance.costs.delta = 0.25;
  const std::size_t k_count = instance.object_count();
  for (std::size_t n = 0; n < instance.node_count(); ++n) {
    for (std::size_t k = 0; k < k_count; ++k) {
      instance.demand.read(n, 0, k) =
          static_cast<double>(1 + (2 * n + 3 * k) % 4);
      instance.demand.write(n, 0, k) = (n + k) % 2 ? 0.5 : 0.0;
    }
  }
  return fx;
}

struct GoldenTreeCase {
  const char* name;        // fixture label (index order in golden_tree)
  double dp_optimum;       // frozen exact DP optimum (bit-for-bit)
  double lower_bound;      // frozen DenseInverse LP bound (bit-for-bit)
  std::size_t iterations;  // frozen DevexDynamic simplex iteration count
};

constexpr GoldenTreeCase kGoldenTree[] = {
    {"star-global", 19.5, 19.5, 28},
    {"binary-global", 13.75, 12.375, 36},
    {"path-closest", 3.25, 3.25, 16},
    {"binary-closest-capped", 6.75, 2.1214285714285706, 47},
    {"ternary-neighborhood", 19.875, 19.875, 120},
    {"star-reactive", 0, 0, 9},
};

TEST(GoldenTree, DpOptimaBoundsAndIterationsPinned) {
  const bool print = std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr;
  for (std::size_t index = 0; index < std::size(kGoldenTree); ++index) {
    const auto& g = kGoldenTree[index];
    const auto fx = golden_tree(index);
    const auto dp = tree::solve_tree_dp(fx.instance, fx.spec);
    const auto dense = bounds::compute_bound(
        fx.instance, fx.spec,
        golden_options(lp::SimplexOptions::Basis::DenseInverse));
    const auto devex =
        bounds::compute_bound(fx.instance, fx.spec, devex_options());
    if (print) {
      std::printf("    {\"%s\", %.17g, %.17g, %zu},\n", g.name, dp.optimum,
                  dense.lower_bound, devex.solver_iterations);
      continue;
    }
    ASSERT_TRUE(dp.feasible) << g.name;
    ASSERT_EQ(dense.status, lp::SolveStatus::Optimal) << g.name;
    // Exact comparisons on purpose: see the file comment.
    EXPECT_EQ(dp.optimum, g.dp_optimum) << g.name;
    EXPECT_EQ(dense.lower_bound, g.lower_bound) << g.name;
    EXPECT_EQ(devex.solver_iterations, g.iterations) << g.name;
    // The sandwich the differential suite asserts statistically, pinned
    // here on fixed instances.
    EXPECT_LE(dense.lower_bound,
              dp.optimum + 1e-7 * (1 + std::abs(dp.optimum)))
        << g.name;
    if (dense.rounded_feasible) {
      EXPECT_LE(dp.optimum,
                dense.rounded_cost + 1e-7 * (1 + std::abs(dp.optimum)))
          << g.name;
    }
  }
}

// The acceptance property for the bandwidth rows: on the capped-closest
// fixture the DP optimum is STRICTLY above the bound of the same instance
// with every capacity lifted — capacity is what forces paid replicas.
TEST(GoldenTree, CappedClosestStrictlyTighterThanUncapped) {
  if (std::getenv("WANPLACE_PRINT_GOLDEN") != nullptr) GTEST_SKIP();
  const auto fx = golden_tree(3);
  auto uncapped = fx.instance;
  uncapped.links->up_capacity.assign(uncapped.node_count(),
                                     graph::kUnlimitedBandwidth);
  const auto capped_dp = tree::solve_tree_dp(fx.instance, fx.spec);
  const auto free_bound = bounds::compute_bound(
      uncapped, fx.spec,
      golden_options(lp::SimplexOptions::Basis::DenseInverse));
  ASSERT_TRUE(capped_dp.feasible);
  ASSERT_EQ(free_bound.status, lp::SolveStatus::Optimal);
  EXPECT_GT(capped_dp.optimum, free_bound.lower_bound + 0.5);
}

// The golden fixture's bounds must also respect the paper's dominance
// ordering: every constrained class costs at least the general bound.
TEST(Golden, ConstrainedClassesDominateGeneralBound) {
  double general_bound = 0;
  for (const auto& g : kGolden) {
    if (std::string(g.name) == "general") general_bound = g.lower_bound;
  }
  for (const auto& g : kGolden) {
    EXPECT_GE(g.lower_bound, general_bound - 1e-9) << g.name;
  }
}

}  // namespace
}  // namespace wanplace
