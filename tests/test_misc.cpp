// Edge-case coverage: logging, stopwatch, solver budget paths, cost-model
// corners.
#include <gtest/gtest.h>

#include <thread>

#include "instance_helpers.h"
#include "lp/pdhg.h"
#include "lp/simplex.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace wanplace {
namespace {

TEST(Log, LevelGate) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must be no-ops (nothing observable to assert beyond not crashing).
  log_debug("invisible ", 42);
  log_info("invisible");
  log_warn("invisible");
  set_log_level(saved);
}

TEST(Stopwatch, MonotonicAndResettable) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double first = watch.elapsed_seconds();
  EXPECT_GT(first, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(watch.elapsed_seconds(), first);
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), first + 0.005);
}

TEST(Simplex, IterationLimitReported) {
  Rng rng(4242);
  lp::LpModel model;
  for (int j = 0; j < 20; ++j) model.add_variable(0, 1, rng.uniform(-1, 1));
  for (int r = 0; r < 15; ++r) {
    std::vector<std::size_t> cols;
    std::vector<double> coeffs;
    for (std::size_t j = 0; j < 20; ++j)
      if (rng.bernoulli(0.5)) {
        cols.push_back(j);
        coeffs.push_back(rng.uniform(-2, 2));
      }
    if (!cols.empty()) model.add_row(lp::RowType::Le, 5, cols, coeffs);
  }
  lp::SimplexOptions options;
  options.max_iterations = 1;
  const auto sol = lp::solve_simplex(model, options);
  EXPECT_EQ(sol.status, lp::SolveStatus::IterationLimit);
  // Even a truncated run must report a non-lying certificate.
  lp::SimplexOptions full;
  const auto exact = lp::solve_simplex(model, full);
  if (exact.status == lp::SolveStatus::Optimal)
    EXPECT_LE(sol.dual_bound, exact.objective + 1e-7);
}

TEST(Pdhg, TimeLimitHonored) {
  Rng rng(17);
  lp::LpModel model;
  for (int j = 0; j < 200; ++j)
    model.add_variable(0, 1, rng.uniform(-1, 1));
  for (int r = 0; r < 150; ++r) {
    std::vector<std::size_t> cols;
    std::vector<double> coeffs;
    for (std::size_t j = 0; j < 200; ++j)
      if (rng.bernoulli(0.1)) {
        cols.push_back(j);
        coeffs.push_back(rng.uniform(-1, 1));
      }
    if (!cols.empty())
      model.add_row(lp::RowType::Ge, -2, cols, coeffs);
  }
  lp::PdhgOptions options;
  options.time_limit_s = 0.05;
  options.tolerance = 0;  // force running until the clock stops it
  options.max_iterations = 100'000'000;
  Stopwatch watch;
  const auto sol = lp::solve_pdhg(model, options);
  EXPECT_LT(watch.elapsed_seconds(), 5.0);
  EXPECT_GT(sol.iterations, 0u);
}

TEST(Instance, MaxPossibleCostIncludesWrites) {
  auto instance = test::line_instance(3, 2, 2, 0.9);
  const double base = instance.max_possible_cost();
  instance.costs.delta = 1;
  instance.demand.write(0, 0, 0) = 10;
  EXPECT_GT(instance.max_possible_cost(), base);
}

TEST(Demand, BoundaryTimestampLandsInLastInterval) {
  std::vector<workload::Request> requests{
      {.time_s = 99.999999, .node = 0, .object = 0}};
  const workload::Trace trace(std::move(requests), 100, 1, 1);
  const auto demand = workload::aggregate(trace, 10);
  EXPECT_DOUBLE_EQ(demand.read(0, 9, 0), 1);
}

TEST(Model, MaxViolationFlagsEverything) {
  lp::LpModel model;
  const auto x = model.add_variable(0, 1, 0);
  model.add_row(lp::RowType::Ge, 1, {x}, {1});
  model.add_row(lp::RowType::Eq, 0.5, {x}, {1});
  EXPECT_GT(model.max_violation({2.0}), 0);   // bound violated
  EXPECT_GT(model.max_violation({0.0}), 0);   // Ge row violated
  EXPECT_GT(model.max_violation({1.0}), 0);   // Eq row violated
  lp::LpModel feasible;
  const auto y = feasible.add_variable(0, 1, 0);
  feasible.add_row(lp::RowType::Le, 1, {y}, {1});
  EXPECT_LE(feasible.max_violation({0.5}), 1e-12);
}

TEST(Simplex, AllVariablesFixedStillSolves) {
  lp::LpModel model;
  const auto x = model.add_variable(0.3, 0.3, 2);
  model.add_row(lp::RowType::Le, 1, {x}, {1});
  const auto sol = lp::solve_simplex(model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 0.6, 1e-9);
}

TEST(Simplex, EmptyRowListIsBoxProblem) {
  lp::LpModel model;
  model.add_variable(0, 2, -1);
  model.add_variable(-1, 3, 2);
  const auto sol = lp::solve_simplex(model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2 + -2, 1e-9);
}

}  // namespace
}  // namespace wanplace
