#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/shortest_paths.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace wanplace::sim {
namespace {

/// Line of 4 nodes (100ms links, Tlat 150ms), origin at node 3.
struct Fixture {
  graph::LatencyMatrix latencies;
  BoolMatrix dist;
  graph::NodeId origin = 3;

  Fixture() {
    const auto topology = graph::line(4, 100, 10);
    latencies = graph::all_pairs_latencies(topology);
    dist = graph::within_threshold(latencies, 150);
  }

  CachingConfig caching_config(std::size_t capacity,
                               bool cooperative = false) const {
    return CachingConfig{.capacity = capacity,
                         .cooperative = cooperative,
                         .origin = origin,
                         .tlat_ms = 150,
                         .interval_count = 4};
  }
};

workload::Trace repeated_reads(std::size_t repetitions) {
  // Node 0 reads object 0 `repetitions` times.
  std::vector<workload::Request> requests;
  for (std::size_t r = 0; r < repetitions; ++r)
    requests.push_back({.time_s = static_cast<double>(r * 10),
                        .node = 0,
                        .object = 0,
                        .is_write = false});
  return workload::Trace(std::move(requests), 3600, 4, 1);
}

TEST(CachingSim, FirstMissThenHits) {
  Fixture fix;
  const auto trace = repeated_reads(5);
  const auto result = simulate_caching(trace, fix.latencies,
                                       fix.caching_config(1), heuristics::lru_factory());
  EXPECT_EQ(result.served, 5u);
  EXPECT_EQ(result.creations, 1u);  // one insertion on the first miss
  // First access goes to the origin (300ms > Tlat): uncovered. Rest hit.
  EXPECT_EQ(result.covered, 4u);
  EXPECT_NEAR(result.qos[0], 0.8, 1e-12);
}

TEST(CachingSim, ZeroCapacityAlwaysMisses) {
  Fixture fix;
  const auto trace = repeated_reads(5);
  const auto result = simulate_caching(trace, fix.latencies,
                                       fix.caching_config(0), heuristics::lru_factory());
  EXPECT_EQ(result.creations, 0u);
  EXPECT_EQ(result.covered, 0u);  // origin is 300ms away
  EXPECT_DOUBLE_EQ(result.storage_cost, 0);
}

TEST(CachingSim, OriginNodeAlwaysCovered) {
  Fixture fix;
  std::vector<workload::Request> requests{
      {.time_s = 0, .node = 3, .object = 0, .is_write = false}};
  const workload::Trace trace(std::move(requests), 100, 4, 1);
  const auto result = simulate_caching(trace, fix.latencies,
                                       fix.caching_config(1), heuristics::lru_factory());
  EXPECT_EQ(result.covered, 1u);
  EXPECT_EQ(result.creations, 0u);  // origin never inserts
}

TEST(CachingSim, CooperativeFetchesFromNeighbor) {
  Fixture fix;
  // Node 1 reads object 0 (miss, inserts); then node 0 reads it twice.
  std::vector<workload::Request> requests{
      {.time_s = 0, .node = 1, .object = 0},
      {.time_s = 10, .node = 0, .object = 0},
      {.time_s = 20, .node = 0, .object = 0},
  };
  const workload::Trace trace(std::move(requests), 100, 4, 1);

  const auto plain = simulate_caching(trace, fix.latencies,
                                      fix.caching_config(1, false),
                                      heuristics::lru_factory());
  // Plain caching: node 0's first read goes to the origin (uncovered).
  EXPECT_EQ(plain.covered, 1u);  // only node 0's second read (local hit)

  const auto coop = simulate_caching(trace, fix.latencies,
                                     fix.caching_config(1, true),
                                     heuristics::lru_factory());
  // Cooperative: node 0 fetches from node 1 (100ms, covered), then hits.
  EXPECT_EQ(coop.covered, 2u);
  EXPECT_GT(coop.qos[0], plain.qos[0]);
}

TEST(CachingSim, CooperativeDirectoryTracksEviction) {
  Fixture fix;
  // Node 1 caches object 0 then evicts it by touching object 1; node 0's
  // later read of object 0 cannot be served by node 1 anymore.
  std::vector<workload::Request> requests{
      {.time_s = 0, .node = 1, .object = 0},
      {.time_s = 10, .node = 1, .object = 1},  // evicts object 0 (capacity 1)
      {.time_s = 20, .node = 0, .object = 0},
  };
  const workload::Trace trace(std::move(requests), 100, 4, 2);
  const auto coop = simulate_caching(trace, fix.latencies,
                                     fix.caching_config(1, true),
                                     heuristics::lru_factory());
  // Node 0's read must fall back to the origin: uncovered.
  EXPECT_NEAR(coop.qos[0], 0.0, 1e-12);
}

TEST(CachingSim, StorageCostIsProvisioned) {
  Fixture fix;
  const auto trace = repeated_reads(1);
  const auto result = simulate_caching(trace, fix.latencies,
                                       fix.caching_config(2), heuristics::lru_factory());
  // capacity 2 x 3 non-origin nodes x 4 intervals.
  EXPECT_DOUBLE_EQ(result.storage_cost, 2 * 3 * 4);
}

// ---------------------------------------------------------------------------
// Interval-heuristic simulation.

TEST(IntervalSim, CoversDemandAfterWarmup) {
  Fixture fix;
  std::vector<workload::Request> requests;
  for (int rep = 0; rep < 8; ++rep)
    requests.push_back({.time_s = rep * 400.0, .node = 0, .object = 0});
  const workload::Trace trace(std::move(requests), 3600, 4, 1);

  heuristics::GreedyGlobalPlacement greedy(fix.dist, fix.origin,
                                           {.capacity = 1});
  IntervalSimConfig config;
  config.origin = fix.origin;
  config.interval_count = 4;
  config.accounting = IntervalSimConfig::StorageAccounting::Capacity;
  config.provisioned = 1;
  const auto sim =
      simulate_interval_heuristic(trace, fix.latencies, config, greedy);
  // Interval 0 (reads at t=0,400,800) is a cold start; the 5 later reads
  // are covered once the object is placed.
  EXPECT_EQ(sim.result.served, 8u);
  EXPECT_EQ(sim.result.covered, 5u);
  EXPECT_DOUBLE_EQ(sim.result.storage_cost, 1 * 3 * 4);
  EXPECT_GE(sim.result.creations, 1u);
}

TEST(IntervalSim, UsageAccountingCountsCells) {
  Fixture fix;
  std::vector<workload::Request> requests{
      {.time_s = 0, .node = 0, .object = 0}};
  const workload::Trace trace(std::move(requests), 3600, 4, 1);
  heuristics::RandomPlacement nothing(fix.origin, 0, 1);
  IntervalSimConfig config;
  config.origin = fix.origin;
  config.interval_count = 2;
  config.accounting = IntervalSimConfig::StorageAccounting::Usage;
  const auto sim =
      simulate_interval_heuristic(trace, fix.latencies, config, nothing);
  EXPECT_DOUBLE_EQ(sim.result.storage_cost, 0);
  EXPECT_DOUBLE_EQ(sim.result.total_cost, 0);
}

// ---------------------------------------------------------------------------
// Sweeps.

workload::Trace zipf_trace(Rng& rng, std::size_t nodes = 4,
                           std::size_t objects = 10,
                           std::size_t requests = 2000) {
  workload::WebParams params;
  params.shape.node_count = nodes;
  params.shape.object_count = objects;
  params.shape.request_count = requests;
  params.shape.duration_s = 3600 * 4;
  return workload::generate_web(params, rng);
}

TEST(Sweep, CachingFindsFeasibleCapacity) {
  Fixture fix;
  Rng rng(5);
  const auto trace = zipf_trace(rng);
  const auto sweep = sweep_caching(trace, fix.latencies,
                                   fix.caching_config(0),
                                   heuristics::lru_factory(), 0.5,
                                   exhaustive_candidates(10));
  ASSERT_TRUE(sweep.feasible);
  EXPECT_GE(sweep.best.min_qos, 0.5);
  EXPECT_GT(sweep.provisioned, 0u);
}

TEST(Sweep, ImpossibleTargetReported) {
  Fixture fix;
  Rng rng(6);
  const auto trace = zipf_trace(rng);
  // 99.999% per-user QoS is unreachable: every node's first touch of each
  // object misses to a 300ms origin.
  const auto sweep = sweep_caching(trace, fix.latencies,
                                   fix.caching_config(0),
                                   heuristics::lru_factory(), 0.99999,
                                   exhaustive_candidates(10));
  EXPECT_FALSE(sweep.feasible);
}

TEST(Sweep, GreedyGlobalMeetsModerateTarget) {
  Fixture fix;
  Rng rng(7);
  const auto trace = zipf_trace(rng);
  IntervalSimConfig config;
  config.origin = fix.origin;
  config.interval_count = 4;
  const auto sweep = sweep_greedy_global(trace, fix.latencies, fix.dist,
                                         config, 0.5, exhaustive_candidates(10));
  ASSERT_TRUE(sweep.feasible);
  EXPECT_GE(sweep.best.min_qos, 0.5);
}

TEST(Sweep, ReplicaGreedyMeetsModerateTarget) {
  Fixture fix;
  Rng rng(8);
  const auto trace = zipf_trace(rng);
  IntervalSimConfig config;
  config.origin = fix.origin;
  config.interval_count = 4;
  const auto sweep = sweep_replica_greedy(trace, fix.latencies, fix.dist,
                                          config, 0.5, exhaustive_candidates(3));
  ASSERT_TRUE(sweep.feasible);
  EXPECT_GE(sweep.best.min_qos, 0.5);
}

TEST(Sweep, HigherTargetCostsMore) {
  Fixture fix;
  Rng rng(9);
  const auto trace = zipf_trace(rng, 4, 10, 4000);
  IntervalSimConfig config;
  config.origin = fix.origin;
  config.interval_count = 4;
  const auto low = sweep_greedy_global(trace, fix.latencies, fix.dist,
                                       config, 0.4, exhaustive_candidates(10));
  const auto high = sweep_greedy_global(trace, fix.latencies, fix.dist,
                                        config, 0.7, exhaustive_candidates(10));
  if (low.feasible && high.feasible)
    EXPECT_LE(low.best.total_cost, high.best.total_cost + 1e-9);
}

}  // namespace
}  // namespace wanplace::sim
