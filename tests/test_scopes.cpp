// QoS scope variations (Section 3.1: per-user, overall, per-object,
// per-user-per-object) and the neighborhood knowledge model.
#include <gtest/gtest.h>

#include "bounds/engine.h"
#include "bounds/feasible.h"
#include "instance_helpers.h"
#include "mcperf/achievability.h"
#include "mcperf/builder.h"
#include "util/check.h"

namespace wanplace::mcperf {
namespace {

using test::line_instance;
using test::random_instance;

TEST(QosGroups, GroupCounts) {
  auto instance = line_instance(3, 2, 4, 0.9);
  EXPECT_EQ(QosGroups(instance, QosScope::PerUser).count(), 3u);
  EXPECT_EQ(QosGroups(instance, QosScope::Overall).count(), 1u);
  EXPECT_EQ(QosGroups(instance, QosScope::PerObject).count(), 4u);
  EXPECT_EQ(QosGroups(instance, QosScope::PerUserPerObject).count(), 12u);
}

TEST(QosGroups, TotalsAccumulatePerScope) {
  auto instance = line_instance(3, 2, 2, 0.9);
  instance.demand.read(0, 0, 0) = 3;
  instance.demand.read(0, 1, 1) = 5;
  instance.demand.read(1, 0, 0) = 7;

  const QosGroups per_user(instance, QosScope::PerUser);
  EXPECT_DOUBLE_EQ(per_user.total_reads(0), 8);
  EXPECT_DOUBLE_EQ(per_user.total_reads(1), 7);

  const QosGroups overall(instance, QosScope::Overall);
  EXPECT_DOUBLE_EQ(overall.total_reads(0), 15);

  const QosGroups per_object(instance, QosScope::PerObject);
  EXPECT_DOUBLE_EQ(per_object.total_reads(0), 10);
  EXPECT_DOUBLE_EQ(per_object.total_reads(1), 5);
}

TEST(QosGroups, GroupOfBoundsChecked) {
  auto instance = line_instance(2, 1, 2, 0.9);
  const QosGroups groups(instance, QosScope::PerUser);
  EXPECT_THROW(groups.group_of(5, 0), InvalidArgument);
  EXPECT_THROW(groups.group_of(0, 9), InvalidArgument);
}

TEST(Scopes, BuilderEmitsOneQosRowPerActiveGroup) {
  auto instance = line_instance(3, 2, 2, 0.9);
  instance.demand.read(0, 0, 0) = 3;
  instance.demand.read(1, 1, 1) = 2;

  auto rows_with = [&](QosScope scope) {
    instance.goal = QosGoal{0.9, scope};
    const auto built = build_lp(instance, classes::general());
    std::size_t qos_rows = 0;
    for (std::size_t r = 0; r < built.model.row_count(); ++r)
      if (built.model.row_name(r).rfind("qos[", 0) == 0) ++qos_rows;
    return qos_rows;
  };
  EXPECT_EQ(rows_with(QosScope::PerUser), 2u);    // nodes 0 and 1 active
  EXPECT_EQ(rows_with(QosScope::Overall), 1u);
  EXPECT_EQ(rows_with(QosScope::PerObject), 2u);  // objects 0 and 1 active
  EXPECT_EQ(rows_with(QosScope::PerUserPerObject), 2u);
}

TEST(Scopes, OverallBoundNeverAbovePerUser) {
  // The overall constraint is implied by the per-user ones, so its optimum
  // cannot exceed the per-user optimum.
  for (std::uint64_t seed : {3u, 9u, 21u}) {
    auto instance = random_instance(seed, 6, 3, 4, 0.9, 400);
    bounds::BoundOptions options;
    options.solver = bounds::BoundOptions::Solver::Simplex;

    instance.goal = QosGoal{0.9, QosScope::PerUser};
    const auto per_user =
        bounds::compute_bound(instance, classes::general(), options);
    instance.goal = QosGoal{0.9, QosScope::Overall};
    const auto overall =
        bounds::compute_bound(instance, classes::general(), options);
    if (!per_user.achievable) continue;
    ASSERT_TRUE(overall.achievable) << "seed " << seed;
    EXPECT_LE(overall.lower_bound, per_user.lower_bound + 1e-6)
        << "seed " << seed;
  }
}

TEST(Scopes, PerUserPerObjectIsTightest) {
  auto instance = random_instance(15, 6, 3, 4, 0.8, 400);
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;

  instance.goal = QosGoal{0.8, QosScope::PerUserPerObject};
  const auto finest =
      bounds::compute_bound(instance, classes::general(), options);
  if (!finest.achievable) GTEST_SKIP() << "instance too sparse";
  for (QosScope scope :
       {QosScope::PerUser, QosScope::PerObject, QosScope::Overall}) {
    instance.goal = QosGoal{0.8, scope};
    const auto coarser =
        bounds::compute_bound(instance, classes::general(), options);
    ASSERT_TRUE(coarser.achievable);
    EXPECT_LE(coarser.lower_bound, finest.lower_bound + 1e-6);
  }
}

TEST(Scopes, RoundingFeasibleUnderEveryScope) {
  for (QosScope scope : {QosScope::PerUser, QosScope::Overall,
                         QosScope::PerObject, QosScope::PerUserPerObject}) {
    auto instance = random_instance(33, 6, 3, 4, 0.8, 400);
    instance.goal = QosGoal{0.8, scope};
    bounds::BoundOptions options;
    options.solver = bounds::BoundOptions::Solver::Simplex;
    const auto detail =
        bounds::compute_bound_detail(instance, classes::general(), options);
    if (!detail.bound.achievable) continue;
    EXPECT_TRUE(detail.bound.rounded_feasible)
        << "scope " << static_cast<int>(scope);
    EXPECT_GE(detail.bound.rounded_cost, detail.bound.lower_bound - 1e-6);
  }
}

TEST(Scopes, EvaluatePlacementHonorsScope) {
  // Node 0 uncovered, node 1 covered; per-user 60% fails, overall 60%
  // passes (node 1 carries more traffic).
  auto instance = line_instance(3, 1, 1, 0.6, /*with_origin=*/false);
  instance.demand.read(0, 0, 0) = 1;
  instance.demand.read(1, 0, 0) = 9;
  bounds::Placement placement(3, 1, 1);
  placement(2, 0, 0) = 1;  // covers node 1 (adjacent) but not node 0

  instance.goal = QosGoal{0.6, QosScope::PerUser};
  const auto per_user =
      bounds::evaluate_placement(instance, classes::general(), placement);
  EXPECT_FALSE(per_user.goal_met);

  instance.goal = QosGoal{0.6, QosScope::Overall};
  const auto overall =
      bounds::evaluate_placement(instance, classes::general(), placement);
  EXPECT_TRUE(overall.goal_met);
  EXPECT_NEAR(overall.min_qos, 0.9, 1e-12);
}

TEST(Scopes, AchievabilityHonorsScope) {
  // Reactive class, cold-start read at node 0 (far from origin): per-user
  // scope is capped by node 0's ratio, overall scope by the global ratio.
  auto instance = line_instance(4, 2, 1, 0.99);
  instance.demand.read(0, 0, 0) = 1;  // uncoverable
  instance.demand.read(2, 0, 0) = 9;  // origin-adjacent: always covered

  instance.goal = QosGoal{0.99, QosScope::PerUser};
  const auto per_user = max_achievable_qos(instance, classes::reactive());
  EXPECT_NEAR(per_user.min_qos, 0.0, 1e-12);  // node 0 fully cold

  instance.goal = QosGoal{0.99, QosScope::Overall};
  const auto overall = max_achievable_qos(instance, classes::reactive());
  EXPECT_NEAR(overall.min_qos, 0.9, 1e-12);
}

// ---------------------------------------------------------------------------
// Neighborhood knowledge.

TEST(Neighborhood, SphereBetweenLocalAndGlobal) {
  // Line 0-1-2-3 (origin 3). Node 0's access is known to node 1 (neighbor)
  // but not to node 2 under neighborhood knowledge.
  auto instance = line_instance(4, 3, 1, 0.9);
  instance.demand.read(0, 0, 0) = 1;

  auto spec = classes::cooperative_caching();
  spec.knowledge = Knowledge::Neighborhood;
  spec.history_intervals = 0;  // unbounded history isolates the know effect
  const auto allowed = compute_create_allowed(instance, spec);
  EXPECT_TRUE(allowed(1, 1, 0));   // neighbor learned of the access
  EXPECT_FALSE(allowed(2, 1, 0));  // two hops away: no knowledge

  spec.knowledge = Knowledge::Global;
  const auto global = compute_create_allowed(instance, spec);
  EXPECT_TRUE(global(2, 1, 0));
}

TEST(Neighborhood, PresetOrderedBetweenCachingAndCoop) {
  const auto instance = random_instance(71, 6, 4, 5, 0.85, 500);
  bounds::BoundOptions options;
  options.solver = bounds::BoundOptions::Solver::Simplex;
  const auto caching =
      bounds::compute_bound(instance, classes::caching(), options);
  const auto neighborhood =
      bounds::compute_bound(instance, classes::neighborhood_caching(),
                            options);
  const auto coop =
      bounds::compute_bound(instance, classes::cooperative_caching(),
                            options);
  if (neighborhood.achievable && coop.achievable)
    EXPECT_GE(neighborhood.lower_bound, coop.lower_bound - 1e-6);
  if (caching.achievable && neighborhood.achievable)
    EXPECT_GE(caching.lower_bound, neighborhood.lower_bound - 1e-6);
}

TEST(Neighborhood, RestrictsCreation) {
  ClassSpec spec;
  spec.knowledge = Knowledge::Neighborhood;
  EXPECT_TRUE(spec.restricts_creation());
}

}  // namespace
}  // namespace wanplace::mcperf
