// Seeded random tree-instance generator for the DP differential harness.
//
// Each seed deterministically produces one single-interval tree instance
// inside the exact-DP window (full-coverage QoS semantics, gamma = zeta =
// 0, origin at the root) plus a heuristic class to bound it with. Latencies
// and Tlat are integers so the DP's path sums and the Dijkstra-derived
// dist/latency matrices agree exactly; reads are small integers so the
// 1e-9-relative QoS tolerances can never swallow a whole demand.
//
// A seeded fraction of the closest-routing instances gets finite per-link
// bandwidth caps (single object, per the DP window); caps are drawn around
// the actual subtree read volumes so they genuinely bind.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "instance_helpers.h"
#include "lp_fuzz.h"  // fuzz_base_seed / fuzz_shard_count
#include "mcperf/heuristic_class.h"

namespace wanplace::test {

struct FuzzTree {
  mcperf::Instance instance;
  mcperf::ClassSpec spec;
  bool capped = false;  // some up-link has a finite capacity
};

inline FuzzTree fuzz_tree_instance(std::uint64_t seed) {
  Rng rng(seed ^ 0x7331BEEFULL);
  FuzzTree out;

  graph::TreeParams params;
  params.depth = 1 + rng.uniform_index(3);   // 1..3
  params.fanout = 1 + rng.uniform_index(3);  // 1..3
  params.latency_jitter = 0;                 // keep path sums integral
  params.local_latency_ms = 10;
  const double level_choices[] = {30, 50, 70, 100};
  params.level_latency_ms.clear();
  for (std::size_t level = 0; level < params.depth; ++level)
    params.level_latency_ms.push_back(level_choices[rng.uniform_index(4)]);

  // Class roll: Global-routing variants and the closest-allocation policy.
  const std::size_t cls = rng.uniform_index(5);
  switch (cls) {
    case 0: out.spec = mcperf::classes::general(); break;
    case 1: out.spec = mcperf::classes::reactive(); break;
    case 2: {
      // Neighborhood knowledge without the provisioned-capacity part of
      // the preset (the DP window has no SC/RC).
      out.spec = mcperf::classes::general();
      out.spec.name = "neighborhood";
      out.spec.knowledge = mcperf::Knowledge::Neighborhood;
      break;
    }
    default: out.spec = mcperf::classes::closest(); break;
  }
  const bool closest = out.spec.routing == mcperf::Routing::Closest;
  out.capped = closest && rng.bernoulli(0.5);

  const std::size_t objects = out.capped ? 1 : 1 + rng.uniform_index(3);
  const double tlat_choices[] = {90, 120, 160, 240};
  const double tlat = tlat_choices[rng.uniform_index(4)];

  if (out.capped) {
    // Rough per-link volume scale: reads average ~2 per demanding cell and
    // a level-L link carries at most the reads of a fanout^(depth-L)
    // subtree. Draw caps around that so some bind and some do not.
    params.level_bandwidth.clear();
    std::size_t below = 1;
    for (std::size_t d = 0; d < params.depth; ++d) below *= params.fanout;
    for (std::size_t level = 0; level < params.depth; ++level) {
      const double scale = static_cast<double>(below) * 2.0;
      const double cap =
          rng.bernoulli(0.3)
              ? 0.0  // uncapped level
              : std::max(1.0, std::floor(scale * rng.uniform(0.3, 1.5)));
      params.level_bandwidth.push_back(cap);
      below = below > params.fanout ? below / params.fanout : 1;
    }
  }

  Rng topo_rng = rng.split();
  const auto topology = graph::tree(params, topo_rng);

  // Scope/tqos inside the full-coverage window.
  mcperf::QosScope scope = mcperf::QosScope::PerUserPerObject;
  double tqos = 1.0;
  if (rng.bernoulli(0.7)) {
    const double tqos_choices[] = {0.7, 0.9, 1.0};
    tqos = tqos_choices[rng.uniform_index(3)];
  } else {
    const mcperf::QosScope scopes[] = {mcperf::QosScope::PerUser,
                                       mcperf::QosScope::Overall,
                                       mcperf::QosScope::PerObject};
    scope = scopes[rng.uniform_index(3)];
  }

  out.instance = tree_instance(topology, tlat, 1, objects, tqos, scope);

  // Integer reads (1..5 on ~60% of cells) and occasional halves-free
  // integer writes so the update term exercises without FP dust.
  const std::size_t n_count = out.instance.node_count();
  for (std::size_t n = 0; n < n_count; ++n)
    for (std::size_t k = 0; k < objects; ++k) {
      if (rng.bernoulli(0.6))
        out.instance.demand.read(n, 0, k) =
            static_cast<double>(1 + rng.uniform_index(5));
      if (rng.bernoulli(0.2))
        out.instance.demand.write(n, 0, k) =
            static_cast<double>(1 + rng.uniform_index(3));
    }

  // Costs inside the DP window; heterogeneous per-node storage sometimes.
  out.instance.costs.alpha = 1;
  const double betas[] = {0.25, 1, 3};
  out.instance.costs.beta = betas[rng.uniform_index(3)];
  out.instance.costs.delta = rng.bernoulli(0.4) ? 0.125 : 0.0;
  out.instance.costs.gamma = 0;
  out.instance.costs.zeta = 0;
  if (rng.bernoulli(0.35)) {
    out.instance.storage_scale.assign(n_count, 1.0);
    const double scales[] = {0.5, 1, 2, 4};
    for (std::size_t n = 0; n < n_count; ++n)
      out.instance.storage_scale[n] = scales[rng.uniform_index(4)];
  }
  return out;
}

}  // namespace wanplace::test
