// Metric export + per-event time series: format pins and determinism.
//
// The Prometheus and JSONL golden pins freeze the exact byte shape of the
// exports (the same shape tools/validate_metrics.py checks on the live CLI
// output); the quantile tests pin the log2-bucket estimator's contract
// (within one bucket of truth, exact for single-sample histograms, and
// bit-deterministic under sharded recording); and the daemon-based test
// asserts the ISSUE's determinism property: the per-event series' `values`
// are bit-identical at every solver parallelism.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "instance_helpers.h"
#include "mcperf/heuristic_class.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "service/daemon.h"

namespace wanplace {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries ring semantics.

obs::SeriesPoint make_point(std::uint64_t index) {
  obs::SeriesPoint point;
  point.index = index;
  point.kind = "demand";
  point.values = {{"lower_bound", static_cast<double>(index) + 0.5}};
  point.seconds = {{"resolve", 0.001}};
  return point;
}

TEST(ObsTimeSeries, RingEvictsOldestAndCountsDropped) {
  obs::TimeSeries series(3);
  EXPECT_EQ(series.capacity(), 3u);
  EXPECT_EQ(series.size(), 0u);
  EXPECT_TRUE(series.points().empty());

  for (std::uint64_t i = 0; i < 5; ++i) series.append(make_point(i));
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.total_appended(), 5u);
  EXPECT_EQ(series.dropped(), 2u);

  const auto points = series.points();
  ASSERT_EQ(points.size(), 3u);
  // The two oldest points were evicted; the survivors stay ordered.
  EXPECT_EQ(points[0].index, 2u);
  EXPECT_EQ(points[1].index, 3u);
  EXPECT_EQ(points[2].index, 4u);
  ASSERT_EQ(points[2].values.size(), 1u);
  EXPECT_EQ(points[2].values[0].first, "lower_bound");
  EXPECT_EQ(points[2].values[0].second, 4.5);

  series.clear();
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.total_appended(), 0u);
  EXPECT_EQ(series.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Quantile sketch: bucketing, estimation error, sharded-merge determinism.

TEST(ObsExport, QuantileBucketsPartitionTheRange) {
  // Non-positive samples land in bucket 0.
  EXPECT_EQ(obs::quantile_bucket(0.0), 0u);
  EXPECT_EQ(obs::quantile_bucket(-3.5), 0u);
  // floor(log2(v)) + 41, clamped to the sketch range.
  EXPECT_EQ(obs::quantile_bucket(1.0), 41u);
  EXPECT_EQ(obs::quantile_bucket(1.99), 41u);
  EXPECT_EQ(obs::quantile_bucket(2.0), 42u);
  EXPECT_EQ(obs::quantile_bucket(0.5), 40u);
  EXPECT_EQ(obs::quantile_bucket(1e-15), 1u);    // clamped low
  EXPECT_EQ(obs::quantile_bucket(1e30), 63u);    // clamped high
  for (double v : {1e-300, 0.37, 1.0, 42.0, 1e300})
    EXPECT_LT(obs::quantile_bucket(v), obs::kQuantileBuckets);
}

TEST(ObsExport, QuantilesWithinOneBucketAndExactForSingleSample) {
  auto& registry = obs::Registry::global();
  registry.enable(true);
  registry.reset();
  // A single sample must come back exactly (midpoint clamped to [min,max]).
  registry.record("one", 1.5);
  // Uniform 1..1000: every estimate must sit within its log2 bucket, i.e.
  // within a factor sqrt(2) of the true quantile.
  for (int v = 1; v <= 1000; ++v) registry.record("uniform", v);
  const auto snapshot = registry.snapshot();
  registry.enable(false);

  const auto& one = snapshot.at("one");
  EXPECT_EQ(one.quantile(0.5), 1.5);
  EXPECT_EQ(one.quantile(0.99), 1.5);

  const auto& uniform = snapshot.at("uniform");
  EXPECT_EQ(uniform.count, 1000u);
  for (const auto& [p, truth] : {std::pair{0.5, 500.0},
                                 std::pair{0.9, 900.0},
                                 std::pair{0.99, 990.0}}) {
    const double estimate = uniform.quantile(p);
    EXPECT_GE(estimate, truth / 2) << "p" << p;
    EXPECT_LE(estimate, truth * 2) << "p" << p;
  }
  // Quantiles never leave the observed range.
  EXPECT_GE(uniform.quantile(0.0), 1.0);
  EXPECT_LE(uniform.quantile(1.0), 1000.0);
}

TEST(ObsExport, ShardedRecordingMergesDeterministically) {
  auto& registry = obs::Registry::global();
  registry.enable(true);
  registry.reset();
  // The same multiset recorded single-threaded...
  for (int v = 1; v <= 400; ++v) registry.record("merge", v % 37 + 1);
  const auto solo = registry.snapshot().at("merge");
  registry.reset();
  // ...and split across two recorder threads (each gets its own shard).
  std::thread half([&] {
    for (int v = 1; v <= 200; ++v) registry.record("merge", v % 37 + 1);
  });
  for (int v = 201; v <= 400; ++v) registry.record("merge", v % 37 + 1);
  half.join();
  const auto sharded = registry.snapshot().at("merge");
  registry.enable(false);

  EXPECT_EQ(solo.count, sharded.count);
  EXPECT_EQ(solo.min, sharded.min);
  EXPECT_EQ(solo.max, sharded.max);
  // Integer bucket counts merge exactly, so the derived quantiles are
  // bit-identical however the samples were sharded.
  ASSERT_EQ(solo.buckets.size(), sharded.buckets.size());
  EXPECT_EQ(solo.buckets, sharded.buckets);
  for (const double p : {0.5, 0.9, 0.99})
    EXPECT_EQ(solo.quantile(p), sharded.quantile(p)) << "p" << p;
}

// ---------------------------------------------------------------------------
// Export format pins.

TEST(ObsExport, ParseFormatRoundTrips) {
  EXPECT_EQ(obs::parse_metrics_format("prom"), obs::MetricsFormat::Prometheus);
  EXPECT_EQ(obs::parse_metrics_format("prometheus"),
            obs::MetricsFormat::Prometheus);
  EXPECT_EQ(obs::parse_metrics_format("jsonl"), obs::MetricsFormat::Jsonl);
  EXPECT_FALSE(obs::parse_metrics_format("csv").has_value());
  EXPECT_FALSE(obs::parse_metrics_format("").has_value());
  EXPECT_STREQ(obs::to_string(obs::MetricsFormat::Prometheus), "prometheus");
  EXPECT_STREQ(obs::to_string(obs::MetricsFormat::Jsonl), "jsonl");
}

TEST(ObsExport, PrometheusNamesAreLegal) {
  EXPECT_EQ(obs::prometheus_name("service.regret.rel"), "service_regret_rel");
  EXPECT_EQ(obs::prometheus_name("lu.rfile-hits"), "lu_rfile_hits");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_lives");  // no leading digit
  EXPECT_EQ(obs::prometheus_name("ok_name:x9"), "ok_name:x9");
}

/// A small deterministic snapshot + series fixture shared by both golden
/// pins: one counter, one gauge, one single-sample histogram, two points.
obs::Snapshot golden_snapshot() {
  obs::Snapshot snapshot;
  obs::MetricValue events;
  events.kind = obs::MetricValue::Kind::Counter;
  events.count = 3;
  events.sum = 3;
  snapshot["service.events"] = events;

  obs::MetricValue cost;
  cost.kind = obs::MetricValue::Kind::Gauge;
  cost.count = 1;
  cost.sum = 12.5;
  snapshot["service.regret.cost"] = cost;

  obs::MetricValue resolve;
  resolve.kind = obs::MetricValue::Kind::Histogram;
  resolve.count = 1;
  resolve.sum = 1.5;
  resolve.min = 1.5;
  resolve.max = 1.5;
  resolve.buckets.assign(obs::kQuantileBuckets, 0);
  resolve.buckets[obs::quantile_bucket(1.5)] = 1;
  snapshot["service.stage.resolve"] = resolve;
  return snapshot;
}

void fill_golden_series(obs::TimeSeries& series) {
  obs::SeriesPoint start;
  start.index = 0;
  start.kind = "start";
  start.values = {{"lower_bound", 9.5}};
  start.seconds = {{"resolve", 0.25}};
  series.append(start);
  obs::SeriesPoint demand;
  demand.index = 1;
  demand.kind = "demand";
  demand.values = {{"lower_bound", 10.25}};
  demand.seconds = {{"resolve", 0.5}};
  series.append(demand);
}

TEST(ObsExport, PrometheusGoldenPin) {
  obs::TimeSeries series(8);
  fill_golden_series(series);
  std::ostringstream out;
  obs::write_prometheus(out, golden_snapshot(), &series);
  EXPECT_EQ(out.str(),
            "# TYPE service_events counter\n"
            "service_events 3\n"
            "# TYPE service_regret_cost gauge\n"
            "service_regret_cost 12.5\n"
            "# TYPE service_stage_resolve summary\n"
            "service_stage_resolve{quantile=\"0.5\"} 1.5\n"
            "service_stage_resolve{quantile=\"0.9\"} 1.5\n"
            "service_stage_resolve{quantile=\"0.99\"} 1.5\n"
            "service_stage_resolve_sum 1.5\n"
            "service_stage_resolve_count 1\n"
            "# TYPE service_stage_resolve_min gauge\n"
            "service_stage_resolve_min 1.5\n"
            "# TYPE service_stage_resolve_max gauge\n"
            "service_stage_resolve_max 1.5\n"
            "# TYPE wanplace_series_points gauge\n"
            "wanplace_series_points 2\n"
            "# TYPE wanplace_series_dropped counter\n"
            "wanplace_series_dropped 0\n"
            "# TYPE wanplace_series_event_index gauge\n"
            "wanplace_series_event_index 1\n"
            "# TYPE wanplace_series_event_rejected gauge\n"
            "wanplace_series_event_rejected 0\n"
            "# TYPE wanplace_series_lower_bound gauge\n"
            "wanplace_series_lower_bound 10.25\n");
}

TEST(ObsExport, JsonlGoldenPin) {
  obs::TimeSeries series(8);
  fill_golden_series(series);
  std::ostringstream out;
  obs::export_metrics(out, obs::MetricsFormat::Jsonl, golden_snapshot(),
                      &series);
  EXPECT_EQ(
      out.str(),
      "{\"type\":\"meta\",\"stream\":\"wanplace-metrics\",\"version\":1}\n"
      "{\"type\":\"point\",\"index\":0,\"kind\":\"start\",\"rejected\":false,"
      "\"values\":{\"lower_bound\":9.5},\"seconds\":{\"resolve\":0.25}}\n"
      "{\"type\":\"point\",\"index\":1,\"kind\":\"demand\",\"rejected\":false,"
      "\"values\":{\"lower_bound\":10.25},\"seconds\":{\"resolve\":0.5}}\n"
      "{\"type\":\"metric\",\"name\":\"service.events\",\"kind\":\"counter\","
      "\"count\":3,\"sum\":3}\n"
      "{\"type\":\"metric\",\"name\":\"service.regret.cost\","
      "\"kind\":\"gauge\",\"count\":1,\"sum\":12.5}\n"
      "{\"type\":\"metric\",\"name\":\"service.stage.resolve\","
      "\"kind\":\"histogram\",\"count\":1,\"sum\":1.5,\"min\":1.5,"
      "\"max\":1.5,\"p50\":1.5,\"p90\":1.5,\"p99\":1.5}\n");
}

// ---------------------------------------------------------------------------
// Daemon series determinism across solver parallelism.

/// Replays a fixed drift script through the daemon at the given solver
/// parallelism and returns the retained series points.
std::vector<obs::SeriesPoint> replay_series(std::size_t parallelism) {
  auto instance = test::line_instance(4, 3, 3, 0.6);
  instance.costs.alpha = 1;
  instance.costs.beta = 2;
  instance.costs.delta = 0.25;
  for (std::size_t n = 0; n < 4; ++n)
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t k = 0; k < 3; ++k) {
        instance.demand.read(n, i, k) =
            static_cast<double>(1 + (n + 2 * i + 3 * k) % 4);
        instance.demand.write(n, i, k) = (n + i + k) % 2 ? 0.5 : 0.0;
      }
  service::DaemonOptions options;
  options.spec = mcperf::classes::general();
  options.tlat_ms = 150;
  options.bounds.parallelism = parallelism;
  service::PlacementDaemon daemon(std::move(instance), std::move(options));
  daemon.start();
  daemon.on_event(workload::DemandDeltaEvent{0, 1, 2, 3.0, 0.0});
  daemon.on_event(workload::DemandDeltaEvent{2, 0, 0, 5.0, 0.5});
  daemon.on_event(workload::LatencyUpdateEvent{0, 2, 120.0});
  daemon.on_event(workload::NodeJoinEvent{100.0, {}});
  // An out-of-range node: the rejection must still consume an index.
  daemon.on_event(workload::DemandDeltaEvent{99, 0, 0, 1.0, 0.0});
  daemon.on_event(workload::DemandDeltaEvent{4, 0, 1, 4.0, 0.0});
  daemon.on_event(workload::NodeLeaveEvent{1});
  return daemon.series().points();
}

TEST(ObsTimeSeries, DeterministicAcrossParallelism) {
  const auto solo = replay_series(1);
  const auto pooled = replay_series(2);
  ASSERT_EQ(solo.size(), 8u);  // start + 7 events, rejected included
  ASSERT_EQ(solo.size(), pooled.size());
  bool saw_rejected = false;
  for (std::size_t p = 0; p < solo.size(); ++p) {
    EXPECT_EQ(solo[p].index, p);
    EXPECT_EQ(solo[p].index, pooled[p].index);
    EXPECT_EQ(solo[p].kind, pooled[p].kind);
    EXPECT_EQ(solo[p].rejected, pooled[p].rejected);
    saw_rejected |= solo[p].rejected;
    // The deterministic half of the point must be BIT-identical at every
    // parallelism (seconds are wall-clock and excluded by design).
    ASSERT_EQ(solo[p].values.size(), pooled[p].values.size()) << p;
    for (std::size_t v = 0; v < solo[p].values.size(); ++v) {
      EXPECT_EQ(solo[p].values[v].first, pooled[p].values[v].first) << p;
      EXPECT_EQ(solo[p].values[v].second, pooled[p].values[v].second)
          << "point " << p << " value " << solo[p].values[v].first;
    }
  }
  EXPECT_TRUE(saw_rejected);
}

}  // namespace
}  // namespace wanplace
