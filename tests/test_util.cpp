#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/log.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace wanplace {
namespace {

/// Restores the global log level on scope exit.
struct LogLevelScope {
  explicit LogLevelScope(LogLevel level) : old(log_level()) {
    set_log_level(level);
  }
  ~LogLevelScope() { set_log_level(old); }
  LogLevel old;
};

TEST(Log, ErrorLevelRespectsThreshold) {
  LogLevelScope scope(LogLevel::Error);
  testing::internal::CaptureStderr();
  log_warn("hidden");
  log_error("visible ", 42);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err, "[error] visible 42\n");
}

TEST(Log, ConcurrentWritesStayLineAtomic) {
  // log_message assembles the full line before the (locked) single write,
  // so lines from pool workers must never interleave mid-line.
  LogLevelScope scope(LogLevel::Info);
  testing::internal::CaptureStderr();
  {
    util::ThreadPool pool(4);
    pool.parallel_for(64, [](std::size_t b) {
      log_info("thread-", b, "-end");
    });
  }
  const std::string err = testing::internal::GetCapturedStderr();
  std::istringstream in(err);
  std::set<std::string> seen;
  for (std::string line; std::getline(in, line);) {
    EXPECT_EQ(line.rfind("[info] thread-", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 4), "-end") << line;
    seen.insert(line);
  }
  EXPECT_EQ(seen.size(), 64u);  // every message arrived intact, none split
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(WANPLACE_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(WANPLACE_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(WANPLACE_CHECK(false, "boom"), InternalError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    WANPLACE_REQUIRE(1 == 2, "context");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{1, 0, 3};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  std::vector<double> zeros{0, 0};
  EXPECT_THROW(rng.weighted_index(zeros), InvalidArgument);
  std::vector<double> negative{1, -1};
  EXPECT_THROW(rng.weighted_index(negative), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  b.split();
  // The parent continues deterministically after a split.
  EXPECT_EQ(a(), b());
  // Child differs from parent stream.
  Rng c(42);
  c.split();
  EXPECT_NE(child(), c());
}

TEST(Matrix, StoreAndRetrieve) {
  DenseMatrix<int> m(2, 3, -1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), -1);
  m.at(1, 2) = 7;
  EXPECT_EQ(m.at(1, 2), 7);
  EXPECT_EQ(m(1, 2), 7);
}

TEST(Matrix, BoundsChecked) {
  DenseMatrix<int> m(2, 3);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 3), InvalidArgument);
}

TEST(Matrix, Equality) {
  DenseMatrix<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(0, 1) = 5;
  EXPECT_NE(a, b);
}

TEST(Cube, StoreAndRetrieve) {
  DenseCube<double> cube(2, 3, 4, 0.5);
  EXPECT_EQ(cube.dim_x(), 2u);
  EXPECT_EQ(cube.dim_y(), 3u);
  EXPECT_EQ(cube.dim_z(), 4u);
  EXPECT_DOUBLE_EQ(cube.at(1, 2, 3), 0.5);
  cube.at(1, 2, 3) = 9;
  EXPECT_DOUBLE_EQ(cube(1, 2, 3), 9);
}

TEST(Cube, BoundsChecked) {
  DenseCube<int> cube(2, 2, 2);
  EXPECT_THROW(cube.at(2, 0, 0), InvalidArgument);
  EXPECT_THROW(cube.at(0, 2, 0), InvalidArgument);
  EXPECT_THROW(cube.at(0, 0, 2), InvalidArgument);
}

TEST(Cube, DistinctIndicesDistinctSlots) {
  DenseCube<int> cube(3, 4, 5);
  int v = 0;
  for (std::size_t x = 0; x < 3; ++x)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t z = 0; z < 5; ++z) cube(x, y, z) = v++;
  v = 0;
  for (std::size_t x = 0; x < 3; ++x)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t z = 0; z < 5; ++z) EXPECT_EQ(cube(x, y, z), v++);
}

TEST(Table, AsciiAlignment) {
  Table t({"name", "cost"});
  t.cell("caching").cell(12.5).finish_row();
  t.cell("greedy").cell(std::int64_t{7}).finish_row();
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("caching"), std::string::npos);
  EXPECT_NE(ascii.find("12.5"), std::string::npos);
  EXPECT_NE(ascii.find("greedy"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"hello, \"world\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, FormatNumberTrimsZeros) {
  EXPECT_EQ(format_number(12.5000), "12.5");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(0.25, 2), "0.25");
  EXPECT_EQ(format_number(std::nan("")), "nan");
}

}  // namespace
}  // namespace wanplace
