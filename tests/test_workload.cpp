#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "workload/analysis.h"
#include "workload/demand.h"
#include "workload/generators.h"
#include "workload/history.h"
#include "workload/trace.h"

namespace wanplace::workload {
namespace {

Trace tiny_trace() {
  std::vector<Request> reqs{
      {.time_s = 10, .node = 0, .object = 0, .is_write = false},
      {.time_s = 5, .node = 1, .object = 1, .is_write = false},
      {.time_s = 90, .node = 0, .object = 1, .is_write = true},
  };
  return Trace(std::move(reqs), 100, 2, 2);
}

TEST(Trace, SortsByTime) {
  const auto t = tiny_trace();
  ASSERT_EQ(t.requests().size(), 3u);
  EXPECT_DOUBLE_EQ(t.requests()[0].time_s, 5);
  EXPECT_DOUBLE_EQ(t.requests()[2].time_s, 90);
}

TEST(Trace, CountsReadsAndWrites) {
  const auto t = tiny_trace();
  EXPECT_EQ(t.read_count(), 2u);
  EXPECT_EQ(t.write_count(), 1u);
}

TEST(Trace, RejectsOutOfRange) {
  std::vector<Request> bad_time{{.time_s = 100, .node = 0, .object = 0}};
  EXPECT_THROW(Trace(bad_time, 100, 1, 1), InvalidArgument);
  std::vector<Request> bad_node{{.time_s = 0, .node = 5, .object = 0}};
  EXPECT_THROW(Trace(bad_node, 100, 1, 1), InvalidArgument);
  std::vector<Request> bad_object{{.time_s = 0, .node = 0, .object = 9}};
  EXPECT_THROW(Trace(bad_object, 100, 1, 1), InvalidArgument);
}

TEST(Trace, SaveLoadRoundTrip) {
  const auto t = tiny_trace();
  std::stringstream buffer;
  t.save(buffer);
  const auto loaded = Trace::load(buffer);
  EXPECT_EQ(loaded.node_count(), t.node_count());
  EXPECT_EQ(loaded.object_count(), t.object_count());
  ASSERT_EQ(loaded.requests().size(), t.requests().size());
  for (std::size_t i = 0; i < t.requests().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.requests()[i].time_s, t.requests()[i].time_s);
    EXPECT_EQ(loaded.requests()[i].node, t.requests()[i].node);
    EXPECT_EQ(loaded.requests()[i].object, t.requests()[i].object);
    EXPECT_EQ(loaded.requests()[i].is_write, t.requests()[i].is_write);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream buffer("not a trace at all");
  EXPECT_THROW(Trace::load(buffer), Error);
}

// ---------------------------------------------------------------------------
// Event-stream parsing: every malformed line must be rejected with the
// source, the 1-based line number, and the offending token in the message.

/// Load `text` as an event stream named "events.txt" and return the
/// rejection message (failing the test if it parses).
std::string load_events_error(const std::string& text) {
  std::istringstream in(text);
  try {
    load_events(in, "events.txt");
  } catch (const Error& err) {
    return err.what();
  }
  ADD_FAILURE() << "expected load_events to reject: " << text;
  return "";
}

void expect_mentions(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message '" << message << "' should mention '" << needle << "'";
}

TEST(Events, SaveLoadRoundTrip) {
  const std::vector<Event> events{
      DemandDeltaEvent{2, 5, 1, 3.25, -0.5},
      NodeJoinEvent{120.5, {{0, 80.0}, {3, 95.25}}},
      NodeLeaveEvent{4},
      LatencyUpdateEvent{1, 2, 66.125},
  };
  std::stringstream buffer;
  save_events(events, buffer);
  const auto loaded = load_events(buffer);
  ASSERT_EQ(loaded.size(), events.size());
  const auto& d = std::get<DemandDeltaEvent>(loaded[0]);
  EXPECT_EQ(d.node, 2);
  EXPECT_EQ(d.interval, 5u);
  EXPECT_EQ(d.object, 1);
  EXPECT_DOUBLE_EQ(d.read_delta, 3.25);
  EXPECT_DOUBLE_EQ(d.write_delta, -0.5);
  const auto& j = std::get<NodeJoinEvent>(loaded[1]);
  EXPECT_DOUBLE_EQ(j.default_latency_ms, 120.5);
  ASSERT_EQ(j.latency_overrides.size(), 2u);
  EXPECT_EQ(j.latency_overrides[1].first, 3);
  EXPECT_DOUBLE_EQ(j.latency_overrides[1].second, 95.25);
  EXPECT_EQ(std::get<NodeLeaveEvent>(loaded[2]).node, 4);
  const auto& u = std::get<LatencyUpdateEvent>(loaded[3]);
  EXPECT_EQ(u.a, 1);
  EXPECT_EQ(u.b, 2);
  EXPECT_DOUBLE_EQ(u.latency_ms, 66.125);
}

TEST(Events, LoadSkipsCommentsAndBlankLines) {
  std::istringstream in(
      "wanplace-events v1\n"
      "# a comment\n"
      "\n"
      "leave 3\n");
  const auto loaded = load_events(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(std::get<NodeLeaveEvent>(loaded[0]).node, 3);
}

TEST(Events, LoadRejectsMissingHeader) {
  const auto message = load_events_error("demand 0 0 0 1 0\n");
  expect_mentions(message, "events.txt:1");
  expect_mentions(message, "wanplace-events v1");
}

TEST(Events, LoadReportsFileLineAndToken) {
  // The bad token sits on line 3 (header is line 1).
  const auto message = load_events_error(
      "wanplace-events v1\n"
      "demand 0 0 0 1 0\n"
      "demand 0 0 zebra 1 0\n");
  expect_mentions(message, "events.txt:3");
  expect_mentions(message, "'zebra'");
}

TEST(Events, LoadRejectsPartiallyNumericTokens) {
  // "3x" consumes a prefix under stol/stod; the whole token must parse.
  expect_mentions(load_events_error("wanplace-events v1\nleave 3x\n"), "'3x'");
  expect_mentions(
      load_events_error("wanplace-events v1\ndemand 1.5 0 0 1 0\n"), "'1.5'");
}

TEST(Events, LoadRejectsNonFiniteNumbers) {
  const auto nan_message = load_events_error(
      "wanplace-events v1\ndemand 0 0 0 nan 0\n");
  expect_mentions(nan_message, "events.txt:2");
  expect_mentions(nan_message, "finite");
  expect_mentions(
      load_events_error("wanplace-events v1\nlatency 0 1 inf\n"), "finite");
  expect_mentions(
      load_events_error("wanplace-events v1\njoin -inf\n"), "finite");
}

TEST(Events, LoadRejectsMissingAndTrailingFields) {
  expect_mentions(load_events_error("wanplace-events v1\ndemand 0 0 0 1\n"),
                  "missing its write_delta field");
  const auto trailing =
      load_events_error("wanplace-events v1\nleave 2 surplus\n");
  expect_mentions(trailing, "trailing");
  expect_mentions(trailing, "'surplus'");
}

TEST(Events, LoadRejectsBadKindsAndOverrides) {
  expect_mentions(load_events_error("wanplace-events v1\nexplode 1 2\n"),
                  "'explode'");
  expect_mentions(load_events_error("wanplace-events v1\njoin 100 0=50\n"),
                  "node:latency");
  expect_mentions(load_events_error("wanplace-events v1\njoin 100 0:oops\n"),
                  "'oops'");
  expect_mentions(
      load_events_error("wanplace-events v1\ndemand 0 -2 0 1 0\n"),
      "interval must be >= 0");
}

TEST(Demand, AggregationBucketsCorrectly) {
  const auto t = tiny_trace();
  const auto d = aggregate(t, 10);  // 10s intervals
  EXPECT_DOUBLE_EQ(d.read(0, 1, 0), 1);   // t=10 -> interval 1
  EXPECT_DOUBLE_EQ(d.read(1, 0, 1), 1);   // t=5 -> interval 0
  EXPECT_DOUBLE_EQ(d.write(0, 9, 1), 1);  // t=90 -> interval 9
  EXPECT_DOUBLE_EQ(d.read(0, 9, 1), 0);
}

TEST(Demand, TotalsConsistent) {
  Rng rng(42);
  WebParams params;
  params.shape.node_count = 5;
  params.shape.object_count = 20;
  params.shape.request_count = 1000;
  const auto trace = generate_web(params, rng);
  const auto demand = aggregate(trace, 12);
  EXPECT_DOUBLE_EQ(demand.total_reads(), 1000);
  double per_node = 0;
  for (std::size_t n = 0; n < 5; ++n) per_node += demand.total_reads(n);
  EXPECT_DOUBLE_EQ(per_node, 1000);
  double per_object = 0;
  for (std::size_t k = 0; k < 20; ++k) per_object += demand.object_reads(k);
  EXPECT_DOUBLE_EQ(per_object, 1000);
}

TEST(Generators, WebEveryObjectAccessed) {
  Rng rng(1);
  WebParams params;
  params.shape.node_count = 4;
  params.shape.object_count = 50;
  params.shape.request_count = 500;
  const auto trace = generate_web(params, rng);
  EXPECT_GE(trace.min_object_reads(), 1u);
}

TEST(Generators, WebIsHeavyTailed) {
  Rng rng(2);
  WebParams params;
  params.shape.node_count = 4;
  params.shape.object_count = 100;
  params.shape.request_count = 10000;
  params.zipf_s = 0.9;
  const auto trace = generate_web(params, rng);
  // Most popular object should dominate the least popular by a large factor.
  EXPECT_GE(trace.max_object_reads(), 50 * trace.min_object_reads());
}

TEST(Generators, GroupIsRoughlyUniform) {
  Rng rng(3);
  GroupParams params;
  params.shape.node_count = 4;
  params.shape.object_count = 20;
  params.shape.request_count = 20000;
  const auto trace = generate_group(params, rng);
  const double expected = 20000.0 / 20;
  EXPECT_GE(trace.min_object_reads(), expected * 0.7);
  EXPECT_LE(trace.max_object_reads(), expected * 1.3);
}

TEST(Generators, WritesFollowFraction) {
  Rng rng(4);
  GroupParams params;
  params.shape.node_count = 3;
  params.shape.object_count = 5;
  params.shape.request_count = 10000;
  params.shape.write_fraction = 0.2;
  const auto trace = generate_group(params, rng);
  EXPECT_NEAR(static_cast<double>(trace.write_count()) / 10000, 0.2, 0.03);
}

TEST(Generators, NodeWeightsSkewActivity) {
  Rng rng(5);
  WebParams params;
  params.shape.node_count = 3;
  params.shape.object_count = 10;
  params.shape.request_count = 9000;
  params.shape.node_weights = {8, 1, 1};
  const auto trace = generate_web(params, rng);
  const auto demand = aggregate(trace, 1);
  EXPECT_GT(demand.total_reads(0), 3 * demand.total_reads(1));
}

TEST(Generators, ZipfWeightsDecreasing) {
  const auto w = zipf_weights(10, 0.9);
  for (std::size_t k = 1; k < w.size(); ++k) EXPECT_LT(w[k], w[k - 1]);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Generators, DiurnalWeightsQuietAtEdgesPeakMidday) {
  const auto weights = diurnal_interval_weights(24, 0.05);
  ASSERT_EQ(weights.size(), 24u);
  EXPECT_LT(weights.front(), weights[12]);
  EXPECT_LT(weights.back(), weights[12]);
  double total = 0;
  for (double w : weights) total += w;
  // The first interval carries a small share of traffic — this is what lets
  // reactive classes reach high QoS despite the cold start.
  EXPECT_LT(weights.front() / total, 0.02);
}

TEST(Generators, IntervalWeightsShapeArrivals) {
  Rng rng(77);
  GroupParams params;
  params.shape.node_count = 3;
  params.shape.object_count = 5;
  params.shape.request_count = 20000;
  params.shape.duration_s = 2400;
  params.shape.interval_weights = {1, 0, 3};  // no arrivals in middle third
  const auto trace = generate_group(params, rng);
  const auto demand = aggregate(trace, 3);
  double per_interval[3] = {0, 0, 0};
  for (std::size_t n = 0; n < 3; ++n)
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t k = 0; k < 5; ++k)
        per_interval[i] += demand.read(n, i, k);
  EXPECT_DOUBLE_EQ(per_interval[1], 0);
  EXPECT_NEAR(per_interval[2] / per_interval[0], 3.0, 0.2);
}

TEST(Generators, SkewedNodeWeightsDeterministic) {
  Rng a(9), b(9);
  EXPECT_EQ(skewed_node_weights(10, 0.8, a), skewed_node_weights(10, 0.8, b));
}

TEST(History, SingleIntervalWindow) {
  Demand demand(1, 4, 1);
  demand.read(0, 1, 0) = 5;
  const auto hist = history(demand, 1);
  EXPECT_FALSE(hist(0, 0, 0));
  EXPECT_TRUE(hist(0, 1, 0));
  EXPECT_FALSE(hist(0, 2, 0));  // window of 1: only the access interval
  EXPECT_FALSE(hist(0, 3, 0));
}

TEST(History, WiderWindow) {
  Demand demand(1, 5, 1);
  demand.read(0, 1, 0) = 1;
  const auto hist = history(demand, 3);
  EXPECT_FALSE(hist(0, 0, 0));
  EXPECT_TRUE(hist(0, 1, 0));
  EXPECT_TRUE(hist(0, 2, 0));
  EXPECT_TRUE(hist(0, 3, 0));
  EXPECT_FALSE(hist(0, 4, 0));
}

TEST(History, UnboundedWindow) {
  Demand demand(1, 5, 1);
  demand.read(0, 1, 0) = 1;
  const auto hist = history(demand, 0);
  EXPECT_FALSE(hist(0, 0, 0));
  for (std::size_t i = 1; i < 5; ++i) EXPECT_TRUE(hist(0, i, 0));
}

TEST(History, RenewedAccessExtendsWindow) {
  Demand demand(1, 6, 1);
  demand.read(0, 0, 0) = 1;
  demand.read(0, 3, 0) = 1;
  const auto hist = history(demand, 2);
  EXPECT_TRUE(hist(0, 0, 0));
  EXPECT_TRUE(hist(0, 1, 0));
  EXPECT_FALSE(hist(0, 2, 0));
  EXPECT_TRUE(hist(0, 3, 0));
  EXPECT_TRUE(hist(0, 4, 0));
  EXPECT_FALSE(hist(0, 5, 0));
}

TEST(History, KnowledgeHistoryUnionsSpheres) {
  Demand demand(2, 2, 1);
  demand.read(1, 0, 0) = 1;  // only node 1 accesses the object
  const auto hist = history(demand, 0);

  const auto local = knowledge_history(hist, know_local(2));
  EXPECT_FALSE(local(0, 0, 0));  // node 0 never saw it
  EXPECT_TRUE(local(1, 0, 0));

  const auto global = knowledge_history(hist, know_global(2));
  EXPECT_TRUE(global(0, 0, 0));  // global knowledge sees node 1's access
  EXPECT_TRUE(global(1, 0, 0));
}

TEST(Analysis, GapAnalysisFindsMinimumGaps) {
  std::vector<Request> reqs{
      {.time_s = 0, .node = 0, .object = 0},
      {.time_s = 10, .node = 0, .object = 0},
      {.time_s = 13, .node = 0, .object = 0},
      {.time_s = 40, .node = 1, .object = 0},
  };
  const Trace trace(std::move(reqs), 100, 2, 1);
  BoolMatrix local(2, 2);
  local(0, 0) = local(1, 1) = 1;
  const auto gaps = access_gaps(trace, local);
  EXPECT_DOUBLE_EQ(gaps.m1_s, 3);
  EXPECT_DOUBLE_EQ(gaps.m2_s, 10);
}

TEST(Analysis, InteractionWidensSphere) {
  std::vector<Request> reqs{
      {.time_s = 0, .node = 0, .object = 0},
      {.time_s = 1, .node = 1, .object = 0},
  };
  const Trace trace(std::move(reqs), 10, 2, 1);
  BoolMatrix local(2, 2);
  local(0, 0) = local(1, 1) = 1;
  const auto isolated = access_gaps(trace, local);
  EXPECT_TRUE(std::isinf(isolated.m1_s));  // one access per node

  BoolMatrix joint(2, 2);
  joint.fill(1);
  const auto combined = access_gaps(trace, joint);
  EXPECT_DOUBLE_EQ(combined.m1_s, 1);
}

TEST(Analysis, PerAccessIntervalTheorem3) {
  // 2*m1 >= m2: use m1/2.
  GapAnalysis close{.m1_s = 4, .m2_s = 6};
  EXPECT_DOUBLE_EQ(per_access_evaluation_interval(close), 2);
  // 2*m1 < m2: m1 suffices.
  GapAnalysis sparse{.m1_s = 4, .m2_s = 10};
  EXPECT_DOUBLE_EQ(per_access_evaluation_interval(sparse), 4);
}

TEST(Analysis, BoundAppliesTheorem2) {
  EXPECT_TRUE(bound_applies(1.0, 1.0));   // same interval
  EXPECT_TRUE(bound_applies(1.0, 2.0));   // 2x
  EXPECT_TRUE(bound_applies(1.0, 5.0));   // beyond 2x
  EXPECT_FALSE(bound_applies(1.0, 1.5));  // in (Delta, 2*Delta)
  EXPECT_FALSE(bound_applies(2.0, 1.0));  // smaller interval
}

}  // namespace
}  // namespace wanplace::workload
