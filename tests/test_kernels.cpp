// Hyper-sparse FTRAN/BTRAN kernels and R-file compression (lp/lu.h)
// against the dense scatter paths and fresh factorizations, plus
// solver-level equivalence of the sparse kernel plumbing in
// lp/simplex.cpp: the sparse paths are designed to perform identical
// arithmetic on identical active sets, so nonzero results must match the
// dense paths bit for bit (zero signs may differ; == treats them equal),
// and the solver's pivot sequence must be independent of the density
// threshold.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lp/lu.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "lp_fuzz.h"
#include "util/rng.h"

namespace wanplace::lp {
namespace {

using test::FuzzLp;
using test::fuzz_adversarial_lp;
using test::fuzz_base_seed;
using test::fuzz_lp;
using test::fuzz_shard_count;

using LuColumns = std::vector<std::vector<BasisLu::Entry>>;

constexpr auto kFt = BasisLu::UpdateMode::ForrestTomlin;

LuColumns random_basis_columns(Rng& rng, std::size_t m, double density) {
  LuColumns columns(m);
  for (std::size_t p = 0; p < m; ++p) {
    columns[p].push_back(
        {static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
    for (std::size_t r = 0; r < m; ++r) {
      if (r == p || !rng.bernoulli(density)) continue;
      columns[p].push_back(
          {static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
    }
  }
  return columns;
}

/// Replace column p of the FT basis through the spike path, mirroring the
/// change in `columns`. Returns false when the update was refused.
bool apply_random_replacement(Rng& rng, BasisLu& lu, LuColumns& columns,
                              std::size_t p) {
  const std::size_t m = columns.size();
  std::vector<BasisLu::Entry> incoming;
  incoming.push_back({static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
  for (std::size_t r = 0; r < m; ++r)
    if (r != p && rng.bernoulli(0.2))
      incoming.push_back({static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
  std::vector<double> w(m, 0.0);
  for (const auto& e : incoming) w[e.index] = e.value;
  lu.ftran(w);
  if (!lu.update(p, w, 1e-12)) return false;
  columns[p] = incoming;
  return true;
}

/// Sparse RHS with `nnz` random nonzeros; returns the dense vector and its
/// nonzero pattern.
std::vector<double> random_sparse_rhs(Rng& rng, std::size_t m,
                                      std::size_t nnz,
                                      std::vector<std::uint32_t>& pattern) {
  std::vector<double> x(m, 0.0);
  pattern.clear();
  for (std::size_t k = 0; k < nnz; ++k) {
    const auto r = static_cast<std::uint32_t>(rng.uniform_index(m));
    if (x[r] == 0.0) pattern.push_back(r);
    x[r] = rng.uniform(-2, 2);
    if (x[r] == 0.0) x[r] = 1.0;  // keep the pattern honest
  }
  return x;
}

/// An FT basis that has been through `updates` random column replacements,
/// with `columns` mirroring the final basis matrix.
void make_updated_ft_basis(Rng& rng, std::size_t m, std::size_t updates,
                           BasisLu& lu, LuColumns& columns) {
  columns = random_basis_columns(rng, m, 0.08);
  ASSERT_TRUE(lu.factorize(m, columns, 0.1, kFt));
  for (std::size_t u = 0; u < updates; ++u)
    apply_random_replacement(rng, lu, columns, rng.uniform_index(m));
}

TEST(LuKernel, FtranSparseMatchesDenseBitExact) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 20 + rng.uniform_index(60);
    BasisLu lu;
    LuColumns columns;
    make_updated_ft_basis(rng, m, 1 + rng.uniform_index(8), lu, columns);

    std::vector<std::uint32_t> pattern;
    auto x = random_sparse_rhs(rng, m, 1 + rng.uniform_index(3), pattern);
    auto dense = x;
    lu.ftran(dense);
    // Threshold 1.0: the kernel stays sparse whenever the closure allows.
    const bool sparse = lu.ftran_sparse(x, pattern, 1.0);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_EQ(x[p], dense[p]) << "trial " << trial << " pos " << p;
    if (sparse) {
      // The returned pattern must cover every nonzero of the result.
      std::vector<bool> in_pattern(m, false);
      for (const std::uint32_t p : pattern) in_pattern[p] = true;
      for (std::size_t p = 0; p < m; ++p)
        if (x[p] != 0.0)
          ASSERT_TRUE(in_pattern[p]) << "trial " << trial << " pos " << p;
    }
  }
}

TEST(LuKernel, BtranSparseMatchesDenseBitExact) {
  Rng rng(102);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 20 + rng.uniform_index(60);
    BasisLu lu;
    LuColumns columns;
    make_updated_ft_basis(rng, m, 1 + rng.uniform_index(8), lu, columns);

    std::vector<std::uint32_t> pattern;
    auto x = random_sparse_rhs(rng, m, 1 + rng.uniform_index(3), pattern);
    auto dense = x;
    lu.btran(dense);
    const bool sparse = lu.btran_sparse(x, pattern, 1.0);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_EQ(x[r], dense[r]) << "trial " << trial << " row " << r;
    if (sparse) {
      std::vector<bool> in_pattern(m, false);
      for (const std::uint32_t r : pattern) in_pattern[r] = true;
      for (std::size_t r = 0; r < m; ++r)
        if (x[r] != 0.0)
          ASSERT_TRUE(in_pattern[r]) << "trial " << trial << " row " << r;
    }
  }
}

TEST(LuKernel, ThresholdZeroForcesDenseFallback) {
  Rng rng(103);
  const std::size_t m = 40;
  BasisLu lu;
  LuColumns columns;
  make_updated_ft_basis(rng, m, 5, lu, columns);

  std::vector<std::uint32_t> pattern;
  auto x = random_sparse_rhs(rng, m, 2, pattern);
  auto dense = x;
  lu.ftran(dense);
  auto p2 = pattern;
  EXPECT_FALSE(lu.ftran_sparse(x, p2, 0.0));
  for (std::size_t p = 0; p < m; ++p) ASSERT_EQ(x[p], dense[p]);

  auto y = random_sparse_rhs(rng, m, 2, pattern);
  auto ydense = y;
  lu.btran(ydense);
  p2 = pattern;
  EXPECT_FALSE(lu.btran_sparse(y, p2, 0.0));
  for (std::size_t r = 0; r < m; ++r) ASSERT_EQ(y[r], ydense[r]);
}

TEST(LuKernel, SparseSolveAfterDenseFallbackKeepsScratchClean) {
  // A dense fallback mid-solve must not leave stale values in the shared
  // zero-background scratch that would corrupt a later sparse solve.
  Rng rng(104);
  const std::size_t m = 50;
  BasisLu lu;
  LuColumns columns;
  make_updated_ft_basis(rng, m, 6, lu, columns);

  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint32_t> pattern;
    // Alternate dense-ish (forced fallback) and hyper-sparse solves.
    const std::size_t nnz = round % 2 == 0 ? m / 2 : 1;
    auto x = random_sparse_rhs(rng, m, nnz, pattern);
    auto dense = x;
    lu.ftran(dense);
    lu.ftran_sparse(x, pattern, 0.25);
    for (std::size_t p = 0; p < m; ++p) ASSERT_EQ(x[p], dense[p]);

    auto y = random_sparse_rhs(rng, m, nnz, pattern);
    auto ydense = y;
    lu.btran(ydense);
    lu.btran_sparse(y, pattern, 0.25);
    for (std::size_t r = 0; r < m; ++r) ASSERT_EQ(y[r], ydense[r]);
  }
}

TEST(LuKernel, SparseSpikeStashFeedsUpdate) {
  // An FT update consumes the spike stashed by the preceding ftran. Stash
  // it through the sparse path and check the updated basis still solves
  // against a fresh factorization of the mirrored columns.
  Rng rng(105);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 20 + rng.uniform_index(40);
    BasisLu lu;
    LuColumns columns;
    make_updated_ft_basis(rng, m, 2, lu, columns);

    for (int change = 0; change < 4; ++change) {
      const std::size_t p = rng.uniform_index(m);
      std::vector<BasisLu::Entry> incoming;
      incoming.push_back(
          {static_cast<std::uint32_t>(p), 2.0 + rng.uniform(0, 1)});
      for (std::size_t r = 0; r < m; ++r)
        if (r != p && rng.bernoulli(0.1))
          incoming.push_back(
              {static_cast<std::uint32_t>(r), rng.uniform(-1, 1)});
      std::vector<double> w(m, 0.0);
      std::vector<std::uint32_t> pattern;
      for (const auto& e : incoming) {
        w[e.index] = e.value;
        pattern.push_back(e.index);
      }
      lu.ftran_sparse(w, pattern, 1.0);
      if (!lu.update(p, w, 1e-12)) continue;
      columns[p] = incoming;
    }

    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(m, columns, 0.1, kFt));
    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto via_updates = rhs, via_fresh = rhs;
    lu.ftran(via_updates);
    fresh.ftran(via_fresh);
    for (std::size_t p = 0; p < m; ++p)
      ASSERT_NEAR(via_updates[p], via_fresh[p], 1e-8) << "trial " << trial;
  }
}

TEST(LuKernel, CompressRfileFoldsEtasIntoU) {
  // Compression folds the R-file into U and re-triangularizes the touched
  // rows. Etas whose referenced rows still sit below their target in
  // pivot order legitimately re-emerge from the re-triangularization, so
  // the file need not empty — but it can never gain etas (at most one new
  // eta per distinct target row), and the operator must be preserved.
  Rng rng(106);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m = 20 + rng.uniform_index(40);
    BasisLu lu;
    LuColumns columns;
    make_updated_ft_basis(rng, m, 6 + rng.uniform_index(6), lu, columns);
    if (lu.reta_count() == 0) continue;
    const std::size_t etas_before = lu.reta_count();

    std::vector<double> rhs(m);
    for (auto& v : rhs) v = rng.uniform(-2, 2);
    auto before_f = rhs, before_b = rhs;
    lu.ftran(before_f);
    lu.btran(before_b);

    ASSERT_TRUE(lu.compress_rfile(1e-9)) << "trial " << trial;
    EXPECT_LE(lu.reta_count(), etas_before);

    auto after_f = rhs, after_b = rhs;
    lu.ftran(after_f);
    lu.btran(after_b);
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_NEAR(after_f[i], before_f[i], 1e-8) << "trial " << trial;
      ASSERT_NEAR(after_b[i], before_b[i], 1e-8) << "trial " << trial;
    }
  }
}

TEST(LuKernel, UpdatesKeepWorkingAfterCompression) {
  Rng rng(107);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 25 + rng.uniform_index(30);
    BasisLu lu;
    LuColumns columns;
    make_updated_ft_basis(rng, m, 5, lu, columns);
    ASSERT_TRUE(lu.compress_rfile(1e-9));

    // Interleave further updates and compressions; the factorization must
    // keep matching a fresh one of the mirrored columns throughout.
    for (int round = 0; round < 6; ++round) {
      apply_random_replacement(rng, lu, columns, rng.uniform_index(m));
      if (round % 2 == 1) ASSERT_TRUE(lu.compress_rfile(1e-9));
      BasisLu fresh;
      ASSERT_TRUE(fresh.factorize(m, columns, 0.1, kFt));
      std::vector<double> rhs(m);
      for (auto& v : rhs) v = rng.uniform(-2, 2);
      auto via_updates = rhs, via_fresh = rhs;
      lu.ftran(via_updates);
      fresh.ftran(via_fresh);
      for (std::size_t p = 0; p < m; ++p)
        ASSERT_NEAR(via_updates[p], via_fresh[p], 1e-7)
            << "trial " << trial << " round " << round;
      auto yt_updates = rhs, yt_fresh = rhs;
      lu.btran(yt_updates);
      fresh.btran(yt_fresh);
      for (std::size_t r = 0; r < m; ++r)
        ASSERT_NEAR(yt_updates[r], yt_fresh[r], 1e-7)
            << "trial " << trial << " round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Solver-level equivalence: the density threshold must change runtimes,
// never answers or pivot sequences.

SimplexOptions with_threshold(double threshold) {
  SimplexOptions options;
  options.sparse_density_threshold = threshold;
  return options;
}

TEST(SimplexSparse, DensityThresholdNeverChangesThePivotSequence) {
  const std::size_t count = fuzz_shard_count(40);
  for (std::size_t i = 0; i < count; ++i) {
    const FuzzLp fuzz = fuzz_lp(fuzz_base_seed() + 9000 + i);
    const LpSolution dense = solve_simplex(fuzz.model, with_threshold(0.0));
    const LpSolution mixed = solve_simplex(fuzz.model, with_threshold(0.1));
    const LpSolution sparse = solve_simplex(fuzz.model, with_threshold(1.0));
    ASSERT_EQ(dense.status, mixed.status) << "case " << i;
    ASSERT_EQ(dense.status, sparse.status) << "case " << i;
    ASSERT_EQ(dense.iterations, mixed.iterations) << "case " << i;
    ASSERT_EQ(dense.iterations, sparse.iterations) << "case " << i;
    if (dense.status == SolveStatus::Optimal) {
      ASSERT_EQ(dense.objective, mixed.objective) << "case " << i;
      ASSERT_EQ(dense.objective, sparse.objective) << "case " << i;
    }
  }
}

TEST(SimplexSparse, DensityThresholdNeverChangesTheDualPivotSequence) {
  const std::size_t count = fuzz_shard_count(40);
  for (std::size_t i = 0; i < count; ++i) {
    const FuzzLp fuzz = fuzz_lp(fuzz_base_seed() + 9500 + i);
    auto dual = [&](double threshold) {
      SimplexOptions options = with_threshold(threshold);
      options.method = SimplexOptions::Method::Dual;
      return solve_simplex(fuzz.model, options);
    };
    const LpSolution dense = dual(0.0);
    const LpSolution sparse = dual(1.0);
    ASSERT_EQ(dense.status, sparse.status) << "case " << i;
    ASSERT_EQ(dense.iterations, sparse.iterations) << "case " << i;
    if (dense.status == SolveStatus::Optimal)
      ASSERT_EQ(dense.objective, sparse.objective) << "case " << i;
  }
}

TEST(SimplexSparse, AdversarialCorpusAgreesAcrossThresholds) {
  const std::size_t count = fuzz_shard_count(30);
  for (std::size_t i = 0; i < count; ++i) {
    const FuzzLp fuzz = fuzz_adversarial_lp(fuzz_base_seed() + 9700 + i);
    const LpSolution dense = solve_simplex(fuzz.model, with_threshold(0.0));
    const LpSolution sparse = solve_simplex(fuzz.model, with_threshold(1.0));
    ASSERT_EQ(dense.status, sparse.status) << "case " << i;
    ASSERT_EQ(dense.iterations, sparse.iterations) << "case " << i;
    if (dense.status == SolveStatus::Optimal)
      ASSERT_EQ(dense.objective, sparse.objective) << "case " << i;
  }
}

TEST(SimplexSparse, ForcedCompressionStaysCorrect) {
  // Compression after every update: maximal numerical churn through the
  // fold-back path. Answers must agree with the plain dense solver to
  // solver tolerance (compression legitimately perturbs roundoff, so
  // iteration counts may differ — values may not).
  const std::size_t count = fuzz_shard_count(30);
  for (std::size_t i = 0; i < count; ++i) {
    const FuzzLp fuzz = fuzz_lp(fuzz_base_seed() + 9900 + i);
    SimplexOptions compressing;
    compressing.rfile_compress_threshold = 1;
    const LpSolution compressed = solve_simplex(fuzz.model, compressing);
    const LpSolution plain = solve_simplex(fuzz.model, with_threshold(0.0));
    ASSERT_EQ(compressed.status, plain.status) << "case " << i;
    if (plain.status == SolveStatus::Optimal) {
      const double scale = 1.0 + std::abs(plain.objective);
      ASSERT_NEAR(compressed.objective, plain.objective, 1e-6 * scale)
          << "case " << i;
    }
  }
}

}  // namespace
}  // namespace wanplace::lp
