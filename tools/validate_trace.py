#!/usr/bin/env python3
"""Validate a wanplace telemetry JSONL trace (schema versions 1 and 2).

Usage: validate_trace.py TRACE.jsonl [--require SPAN_NAME ...]

Schema (see src/obs/trace.h):
  {"type":"meta","version":V,"spans":N,"samples":M}        -- first line
  {"type":"span","id":I,"parent":P,"name":"...","thread":T,
   "start_s":S,"dur_s":D,"attrs":{...}}                    -- parent 0 = root
  {"type":"sample","name":"...","thread":T,"time_s":S,"step":X,"value":V}
  {"type":"metric","name":"...","kind":"counter|gauge|histogram",
   "count":N,"sum":S[,"min":m,"max":M,"p50":q,"p90":q,"p99":q]}

Checks: every line parses as a JSON object of a known type with the right
field types (numbers may be null: non-finite doubles are exported as null),
span ids are unique and parents reference an earlier span (spans are sorted
by start time, and a parent always starts before its children), durations
are non-negative, and the meta counts match the body. Every --require NAME
must appear among the span names.

Version 2 adds histogram quantiles (p50/p90/p99, all three required on
histogram metrics) and daemon event causality: every `service.event` span
must carry a numeric "event" attr (the monotonic event index) and a string
"kind" attr, and every per-stage span (service.validate / service.patch /
service.resolve / service.audit / service.policy) must have a
`service.event` ancestor, so per-stage latency is always attributable to
one event. Exits 1 with a message on the first violation.
"""

import argparse
import json
import sys

STAGE_SPANS = {
    "service.validate", "service.patch", "service.resolve",
    "service.audit", "service.policy",
}


def fail(lineno, message):
    print(f"validate_trace: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(value):
    return value is None or (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    )


def check_span(lineno, obj, span_ids):
    for key, kind in (("id", int), ("parent", int), ("thread", int),
                      ("name", str)):
        if not isinstance(obj.get(key), kind) or isinstance(obj.get(key), bool):
            fail(lineno, f"span field {key!r} missing or not {kind.__name__}")
    for key in ("start_s", "dur_s"):
        if key not in obj or not is_number(obj[key]):
            fail(lineno, f"span field {key!r} missing or not numeric")
    if obj["dur_s"] is not None and obj["dur_s"] < 0:
        fail(lineno, "negative span duration")
    if not isinstance(obj.get("attrs"), dict):
        fail(lineno, "span field 'attrs' missing or not an object")
    for key, value in obj["attrs"].items():
        if not (is_number(value) or isinstance(value, str)):
            fail(lineno, f"span attr {key!r} is neither number nor string")
    if obj["id"] in span_ids:
        fail(lineno, f"duplicate span id {obj['id']}")
    if obj["parent"] != 0 and obj["parent"] not in span_ids:
        fail(lineno, f"span parent {obj['parent']} not seen before child")


def check_span_causality(lineno, obj, name_by_id, parent_by_id):
    """Schema v2: daemon spans carry event identity and stage spans nest
    under a service.event ancestor."""
    name = obj["name"]
    if name == "service.event":
        attrs = obj["attrs"]
        if not is_number(attrs.get("event")) or attrs.get("event") is None:
            fail(lineno, "service.event span lacks a numeric 'event' attr")
        if not isinstance(attrs.get("kind"), str):
            fail(lineno, "service.event span lacks a string 'kind' attr")
    if name in STAGE_SPANS:
        ancestor = obj["parent"]
        while ancestor != 0 and name_by_id.get(ancestor) != "service.event":
            ancestor = parent_by_id.get(ancestor, 0)
        if ancestor == 0:
            fail(lineno, f"stage span {name!r} has no service.event ancestor")


def check_sample(lineno, obj):
    if not isinstance(obj.get("name"), str):
        fail(lineno, "sample field 'name' missing or not a string")
    if not isinstance(obj.get("thread"), int) or isinstance(obj["thread"], bool):
        fail(lineno, "sample field 'thread' missing or not an int")
    for key in ("time_s", "step", "value"):
        if key not in obj or not is_number(obj[key]):
            fail(lineno, f"sample field {key!r} missing or not numeric")


def check_metric(lineno, obj, version):
    if not isinstance(obj.get("name"), str):
        fail(lineno, "metric field 'name' missing or not a string")
    if obj.get("kind") not in ("counter", "gauge", "histogram"):
        fail(lineno, f"unknown metric kind {obj.get('kind')!r}")
    count = obj.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        fail(lineno, "metric field 'count' missing or not a non-negative int")
    if "sum" not in obj or not is_number(obj["sum"]):
        fail(lineno, "metric field 'sum' missing or not numeric")
    if obj["kind"] == "histogram":
        extremes = ("min", "max")
        quantiles = ("p50", "p90", "p99") if version >= 2 else ()
        for key in extremes + quantiles:
            if key not in obj or not is_number(obj[key]):
                fail(lineno, f"histogram field {key!r} missing or not numeric")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SPAN_NAME",
                        help="span name that must appear in the trace")
    args = parser.parse_args()

    meta = None
    version = 1
    span_ids = set()
    span_names = set()
    name_by_id = {}
    parent_by_id = {}
    spans = samples = 0
    with open(args.trace, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                fail(lineno, "blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                fail(lineno, f"not valid JSON: {error}")
            if not isinstance(obj, dict):
                fail(lineno, "line is not a JSON object")
            kind = obj.get("type")
            if lineno == 1 and kind != "meta":
                fail(lineno, "first line must be the meta record")
            if kind == "meta":
                if meta is not None:
                    fail(lineno, "duplicate meta record")
                if obj.get("version") not in (1, 2):
                    fail(lineno, f"unsupported version {obj.get('version')!r}")
                version = obj["version"]
                for key in ("spans", "samples"):
                    if not isinstance(obj.get(key), int):
                        fail(lineno, f"meta field {key!r} missing or not int")
                meta = obj
            elif kind == "span":
                check_span(lineno, obj, span_ids)
                span_ids.add(obj["id"])
                span_names.add(obj["name"])
                name_by_id[obj["id"]] = obj["name"]
                parent_by_id[obj["id"]] = obj["parent"]
                if version >= 2:
                    check_span_causality(lineno, obj, name_by_id,
                                         parent_by_id)
                spans += 1
            elif kind == "sample":
                check_sample(lineno, obj)
                samples += 1
            elif kind == "metric":
                check_metric(lineno, obj, version)
            else:
                fail(lineno, f"unknown record type {kind!r}")

    if meta is None:
        fail(0, "empty trace (no meta record)")
    if meta["spans"] != spans:
        fail(0, f"meta announces {meta['spans']} spans, file has {spans}")
    if meta["samples"] != samples:
        fail(0, f"meta announces {meta['samples']} samples, file has {samples}")
    missing = sorted(set(args.require) - span_names)
    if missing:
        fail(0, f"required span names missing: {', '.join(missing)} "
                f"(present: {', '.join(sorted(span_names))})")
    print(f"ok: schema v{version}, {spans} spans, {samples} samples"
          + (f", covers {', '.join(args.require)}" if args.require else ""))


if __name__ == "__main__":
    main()
