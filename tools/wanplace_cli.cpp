// wanplace_cli — run the paper's methodology on files from your system.
//
//   wanplace_cli gen-example --out DIR
//       Write a sample topology + trace pair to experiment with.
//       --gen as-like (default) takes --nodes; --gen tree builds a
//       hierarchical topology from --depth/--fanout/--level-latency
//       [--level-bandwidth CAP to cap every link, --jitter F for latency
//       jitter]. Tree topologies loaded by the commands below
//       automatically carry the link model that enables --class closest
//       and per-link bandwidth capacity rows.
//
//   wanplace_cli select --topology T --trace R [options]
//       Section 6.1: class lower bounds + heuristic recommendation.
//
//   wanplace_cli plan --topology T --trace R [--zeta 10000] [options]
//       Section 6.2: pick deployment sites, then the heuristic.
//
//   wanplace_cli bound --class NAME --topology T --trace R [options]
//       Lower bound for one heuristic class.
//
//   wanplace_cli serve --topology T --trace R --events E [options]
//       Continuous re-placement replay: run the placement daemon over a
//       drift-event stream (demand deltas, node join/leave, latency
//       updates; gen-example writes a sample events.txt). The LP is
//       delta-patched and warm-started per event; a new plan is published
//       only when it beats the incumbent by --margin (default 0.01) or the
//       incumbent turned infeasible. --class NAME (default general),
//       --max-events N to truncate the stream. --batch N folds every N
//       consecutive events into one atomic mutation + model patch + warm
//       re-solve (a batch with any invalid event is rejected whole;
//       applied + rejected still counts per event).
//       --metrics-out FILE [--metrics-format prom|jsonl] exports service
//       metrics after every event: `prom` rewrites FILE with the current
//       Prometheus text exposition (scrape-style), `jsonl` appends one
//       {"type":"point",...} line per event (regret, bound, pivots, stage
//       seconds) and the final metric snapshot (validated by
//       tools/validate_metrics.py). The end-of-replay status line reports
//       the daemon health snapshot (incumbent cost, regret vs the bound,
//       staleness, rebuild/basis-drop totals).
//
// Common options:
//   --tqos 0.99        QoS target (fraction of reads within the threshold)
//   --tlat 150         latency threshold in ms
//   --intervals 24     evaluation intervals over the trace horizon
//   --origin 0         node id of the origin/headquarters
//   --scope per-user | overall | per-object | per-user-object
//   --time-limit 10    seconds per LP solve
//   --solver auto | simplex | dual | pdhg    force the LP solver choice
//                      (dual = dual simplex; falls back to primal when no
//                      dual-feasible start exists)
//
// Telemetry (select and bound):
//   --trace-out FILE   write solver telemetry as JSONL (spans, samples,
//                      metrics; schema in src/obs/trace.h — note --trace is
//                      the *workload* trace input, not this)
//   --trace-summary    print the aggregated span tree to stdout
//   --report           print per-solve sensitivity reports with QoS-row
//                      shadow prices ("class SC pays 0.42/unit of Tqos
//                      slack")
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/selector.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/reachability.h"
#include "graph/shortest_paths.h"
#include "mcperf/builder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/solve_report.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "tree/family.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using namespace wanplace;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback
                               : static_cast<std::size_t>(
                                     std::stoul(it->second));
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  // Flags that take no value.
  static const std::set<std::string> kSwitches = {"report", "trace-summary"};
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0)
      throw Error("expected --flag, got '" + flag + "'");
    flag.erase(0, 2);
    if (kSwitches.count(flag)) {
      args.options[flag] = "1";
      continue;
    }
    if (i + 1 >= argc) throw Error("missing value for --" + flag);
    args.options[flag] = argv[++i];
  }
  return args;
}

mcperf::QosScope parse_scope(const std::string& name) {
  if (name == "per-user") return mcperf::QosScope::PerUser;
  if (name == "overall") return mcperf::QosScope::Overall;
  if (name == "per-object") return mcperf::QosScope::PerObject;
  if (name == "per-user-object") return mcperf::QosScope::PerUserPerObject;
  throw Error("unknown scope '" + name + "'");
}

mcperf::ClassSpec parse_class(const std::string& name) {
  for (const auto& spec :
       {mcperf::classes::general(), mcperf::classes::storage_constrained(),
        mcperf::classes::replica_constrained(),
        mcperf::classes::replica_constrained_per_object(),
        mcperf::classes::decentralized_local_routing(),
        mcperf::classes::caching(), mcperf::classes::cooperative_caching(),
        mcperf::classes::neighborhood_caching(),
        mcperf::classes::caching_with_prefetching(),
        mcperf::classes::cooperative_caching_with_prefetching(),
        mcperf::classes::reactive(), mcperf::classes::closest()}) {
    if (spec.name == name) return spec;
  }
  throw Error("unknown class '" + name + "' (try: general, "
              "storage-constrained, replica-constrained, caching, "
              "coop-caching, closest, ...)");
}

struct Loaded {
  graph::Topology topology;
  graph::LatencyMatrix latencies;
  mcperf::Instance instance;
};

Loaded load(const Args& args) {
  const std::string topology_path = args.get("topology", "");
  const std::string trace_path = args.get("trace", "");
  WANPLACE_REQUIRE(!topology_path.empty() && !trace_path.empty(),
                   "--topology and --trace are required");
  Loaded loaded{graph::load_topology_file(topology_path), {}, {}};
  loaded.latencies = graph::all_pairs_latencies(loaded.topology);

  const auto trace = workload::Trace::load_file(trace_path);
  WANPLACE_REQUIRE(trace.node_count() == loaded.topology.node_count(),
                   "trace and topology node counts differ");

  const double tlat = args.get_double("tlat", 150);
  const auto intervals = args.get_size("intervals", 24);
  loaded.instance.demand = workload::aggregate(trace, intervals);
  loaded.instance.dist = graph::within_threshold(loaded.latencies, tlat);
  loaded.instance.latencies = loaded.latencies;
  loaded.instance.goal = mcperf::QosGoal{
      args.get_double("tqos", 0.99),
      parse_scope(args.get("scope", "per-user"))};
  loaded.instance.origin =
      static_cast<graph::NodeId>(args.get_size("origin", 0));
  // Tree topologies get the hierarchical link model (parents, up-link
  // latencies and bandwidth caps) rooted at the origin — required by the
  // closest class and by the per-link capacity rows on capped topologies.
  if (tree::is_tree(loaded.topology))
    loaded.instance.links =
        tree::extract_links(loaded.topology, *loaded.instance.origin, tlat);
  return loaded;
}

bounds::BoundOptions bound_options(const Args& args) {
  bounds::BoundOptions options;
  options.pdhg.time_limit_s = args.get_double("time-limit", 10);
  const std::string solver = args.get("solver", "auto");
  if (solver == "simplex") {
    options.solver = bounds::BoundOptions::Solver::Simplex;
  } else if (solver == "dual") {
    // Dual simplex for every solve (falls back to the cold primal when no
    // dual-feasible start exists; see SimplexOptions::Method).
    options.solver = bounds::BoundOptions::Solver::Simplex;
    options.simplex.method = lp::SimplexOptions::Method::Dual;
  } else if (solver == "pdhg") {
    options.solver = bounds::BoundOptions::Solver::Pdhg;
  } else if (solver != "auto") {
    throw Error("unknown solver '" + solver + "' (auto|simplex|dual|pdhg)");
  }
  return options;
}

/// Turn on the telemetry layer when any telemetry flag asks for output.
void telemetry_begin(const Args& args) {
  if (args.get("trace-out", "").empty() && !args.has("trace-summary") &&
      !args.has("report") && args.get("metrics-out", "").empty())
    return;
  obs::Registry::global().enable(true);
  obs::Tracer::global().enable(true);
}

/// Flush telemetry outputs after the command body ran.
void telemetry_end(const Args& args) {
  const std::string path = args.get("trace-out", "");
  if (!path.empty()) {
    std::ofstream out(path);
    WANPLACE_REQUIRE(out.good(), "cannot open --trace-out file");
    obs::Tracer::global().write_jsonl(out);
    std::cout << "telemetry trace written to " << path << "\n";
  }
  if (args.has("trace-summary"))
    std::cout << "\n" << obs::Tracer::global().summary();
}

int cmd_gen_example(const Args& args) {
  const std::string out = args.get("out", "wanplace-example");
  std::filesystem::create_directories(out);

  Rng rng(args.get_size("seed", 42));
  graph::Topology topology;
  const std::string gen = args.get("gen", "as-like");
  if (gen == "tree") {
    // Hierarchical CDN-style topology: --depth/--fanout shape, one link
    // latency per level via --level-latency (last repeats), optional
    // per-level bandwidth caps via --level-bandwidth (0 = uncapped).
    graph::TreeParams params;
    params.depth = args.get_size("depth", 3);
    params.fanout = args.get_size("fanout", 2);
    params.level_latency_ms = {args.get_double("level-latency", 100)};
    params.latency_jitter = args.get_double("jitter", 0);
    const double bandwidth = args.get_double("level-bandwidth", 0);
    if (bandwidth > 0) params.level_bandwidth = {bandwidth};
    topology = graph::tree(params, rng);
  } else if (gen == "as-like") {
    graph::AsLikeParams params;
    params.node_count = args.get_size("nodes", 12);
    topology = graph::as_like(params, rng);
  } else {
    throw Error("unknown generator '" + gen + "' (as-like|tree)");
  }
  graph::save_topology_file(topology, out + "/topology.txt");

  workload::WebParams web;
  web.shape.node_count = topology.node_count();
  web.shape.object_count = args.get_size("objects", 60);
  web.shape.request_count = args.get_size("requests", 20'000);
  web.shape.interval_weights = workload::diurnal_interval_weights(24);
  const auto trace = workload::generate_web(web, rng);
  trace.save_file(out + "/trace.txt");

  // Drift-event stream for `serve`: seeded demand perturbations, plus a
  // join / latency-update / leave episode on general topologies. Tree
  // topologies carry a link model whose node set is fixed, so they get
  // demand drift only. Intervals are drawn below 6 so the stream replays
  // under any --intervals >= 6.
  std::vector<workload::Event> events;
  const auto demand_event = [&] {
    workload::DemandDeltaEvent event;
    event.node = static_cast<graph::NodeId>(
        rng.uniform_index(topology.node_count()));
    event.interval = rng.uniform_index(6);
    event.object = static_cast<workload::ObjectId>(
        rng.uniform_index(web.shape.object_count));
    event.read_delta = rng.uniform(0.5, 4.0);
    event.write_delta = rng.bernoulli(0.3) ? rng.uniform(0.0, 1.0) : 0.0;
    events.push_back(event);
  };
  for (int i = 0; i < 6; ++i) demand_event();
  if (gen != "tree") {
    const auto fresh = static_cast<graph::NodeId>(topology.node_count());
    events.push_back(workload::NodeJoinEvent{120.0, {{0, 80.0}}});
    demand_event();
    demand_event();
    events.push_back(workload::LatencyUpdateEvent{fresh, 1, 90.0});
    events.push_back(workload::NodeLeaveEvent{fresh});
  }
  // One deliberately malformed event (unknown node): the daemon rejects it
  // atomically but still consumes its event index, so replays exercise the
  // rejection path and the applied/rejected counter split.
  {
    workload::DemandDeltaEvent bad;
    bad.node = static_cast<graph::NodeId>(topology.node_count() + 7);
    bad.interval = 0;
    bad.object = 0;
    bad.read_delta = 1.0;
    events.push_back(bad);
  }
  demand_event();
  demand_event();
  workload::save_events_file(events, out + "/events.txt");

  std::cout << "wrote " << out << "/topology.txt ("
            << topology.summary() << ")\n"
            << "wrote " << out << "/trace.txt (" << trace.read_count()
            << " reads over " << web.shape.object_count << " objects)\n"
            << "wrote " << out << "/events.txt (" << events.size()
            << " drift events)\n"
            << "try: wanplace_cli select --topology " << out
            << "/topology.txt --trace " << out << "/trace.txt\n";
  return 0;
}

int cmd_serve(const Args& args) {
  telemetry_begin(args);
  const auto loaded = load(args);
  const std::string events_path = args.get("events", "");
  WANPLACE_REQUIRE(!events_path.empty(), "--events is required");
  auto events = workload::load_events_file(events_path);
  const std::size_t max_events = args.get_size("max-events", events.size());
  if (events.size() > max_events) events.resize(max_events);
  // --batch N folds every N consecutive events into one atomic instance
  // mutation + model patch + warm re-solve (one publish decision per
  // burst); 1 replays event by event.
  const std::size_t batch_size = args.get_size("batch", 1);
  WANPLACE_REQUIRE(batch_size >= 1, "--batch needs a positive burst size");

  service::DaemonOptions options;
  options.spec = parse_class(args.get("class", "general"));
  options.bounds = bound_options(args);
  options.policy.min_relative_gain = args.get_double("margin", 0.01);
  options.tlat_ms = args.get_double("tlat", 150);
  service::PlacementDaemon daemon(loaded.instance, options);

  // Metric export, flushed after every event. Prometheus rewrites the file
  // with the current exposition (what a scraper would see); JSONL is an
  // append-only stream of per-event points closed with a metric snapshot.
  const std::string metrics_path = args.get("metrics-out", "");
  const auto format_name = args.get("metrics-format", "prom");
  const auto metrics_format = obs::parse_metrics_format(format_name);
  WANPLACE_REQUIRE(metrics_format.has_value(),
                   "unknown --metrics-format (prom|jsonl)");
  std::ofstream metrics_stream;
  if (!metrics_path.empty() &&
      *metrics_format == obs::MetricsFormat::Jsonl) {
    metrics_stream.open(metrics_path);
    WANPLACE_REQUIRE(metrics_stream.good(),
                     "cannot open --metrics-out file");
    obs::write_jsonl_header(metrics_stream);
  }
  const auto flush_metrics = [&] {
    if (metrics_path.empty()) return;
    if (*metrics_format == obs::MetricsFormat::Prometheus) {
      std::ofstream out(metrics_path);
      WANPLACE_REQUIRE(out.good(), "cannot open --metrics-out file");
      obs::write_prometheus(out, obs::Registry::global().snapshot(),
                            &daemon.series());
      return;
    }
    const auto points = daemon.series().points();
    if (!points.empty())
      obs::write_point_jsonl(metrics_stream, points.back());
    metrics_stream.flush();
  };

  std::size_t pivots = 0;
  const auto report = [&](const service::EventOutcome& outcome) {
    std::cout << "event " << outcome.index << " [" << outcome.kind << "] ";
    if (outcome.rejected) {
      std::cout << "rejected: " << outcome.error << "\n";
      flush_metrics();
      return;
    }
    pivots += outcome.pivots;
    std::cout << (outcome.incremental ? "incremental" : "rebuild")
              << (outcome.warm ? "+warm" : "") << " bound "
              << format_number(outcome.lower_bound, 1) << " pivots "
              << outcome.pivots << " -> "
              << (outcome.published ? "publish" : "hold") << " ("
              << outcome.reason << ")";
    if (outcome.audit.exists && outcome.audit.bound_certified)
      std::cout << " regret "
                << format_number(outcome.audit.relative_regret * 100, 1)
                << "%";
    std::cout << "\n";
    flush_metrics();
  };

  report(daemon.start());
  if (batch_size <= 1) {
    for (const auto& event : events) report(daemon.on_event(event));
  } else {
    for (std::size_t start = 0; start < events.size(); start += batch_size) {
      const auto last = std::min(events.size(), start + batch_size);
      report(daemon.on_batch(workload::EventBatch(
          events.begin() + static_cast<std::ptrdiff_t>(start),
          events.begin() + static_cast<std::ptrdiff_t>(last))));
    }
  }

  // Event-level accounting from the status counters (a rejected batch
  // counts each of its events; the start() build is not a drift rebuild).
  const service::DaemonStatus counts = daemon.status();
  std::cout << "served " << counts.events << " events: "
            << counts.incremental << " incremental, "
            << counts.rebuilds - 1 << " rebuilds, "
            << counts.rejected << " rejected, " << daemon.publishes()
            << " publishes, " << pivots << " total pivots\n";
  if (daemon.has_plan())
    std::cout << "live plan cost "
              << format_number(daemon.published_cost(), 1) << "\n";
  const service::DaemonStatus status = daemon.status();
  std::cout << "status: plan=" << (status.has_plan ? "yes" : "no")
            << " incumbent " << format_number(status.incumbent_cost, 1)
            << " bound " << format_number(status.lower_bound, 1)
            << " regret " << format_number(status.relative_regret * 100, 1)
            << "% stale " << status.events_since_publish << " (last: "
            << (status.last_reason.empty() ? "none" : status.last_reason)
            << ", rebuilds " << status.rebuilds << ", basis drops "
            << status.basis_drops << ")\n";
  if (!metrics_path.empty() &&
      *metrics_format == obs::MetricsFormat::Jsonl) {
    obs::write_snapshot_jsonl(metrics_stream,
                              obs::Registry::global().snapshot());
    metrics_stream.flush();
  }
  if (!metrics_path.empty())
    std::cout << "metrics written to " << metrics_path << " ("
              << obs::to_string(*metrics_format) << ")\n";
  telemetry_end(args);
  std::cout << "replay complete\n";
  return 0;
}

int cmd_select(const Args& args) {
  telemetry_begin(args);
  const auto loaded = load(args);
  core::SelectorOptions options;
  options.bounds = bound_options(args);
  options.keep_details = args.has("report");
  const auto report =
      core::HeuristicSelector(options).select(loaded.instance);
  std::cout << report.to_table().to_ascii() << "\n";
  if (report.has_recommendation()) {
    std::cout << "recommended class: "
              << report.recommended_bound().class_name << "\n"
              << "suggested heuristic: " << report.suggestion << "\n"
              << "bound vs general floor: "
              << format_number(report.optimality_ratio, 3) << "x\n";
  } else {
    std::cout << "no candidate class can meet this goal.\n";
  }
  if (args.has("report")) {
    std::cout << "\nsensitivity report (duals on the QoS rows; shadow price "
                 "= d(cost)/d(tqos)):\n";
    for (const auto& detail : report.details)
      std::cout << obs::to_string(obs::make_solve_report(detail));
  }
  telemetry_end(args);
  return 0;
}

int cmd_plan(const Args& args) {
  const auto loaded = load(args);
  core::PlannerOptions options;
  options.zeta = args.get_double("zeta", 10'000);
  options.bounds = bound_options(args);
  const auto plan = core::DeploymentPlanner(options).plan(loaded.instance);
  std::cout << "deploy " << plan.open_nodes.size() << " nodes:";
  for (const auto node : plan.open_nodes) std::cout << ' ' << node;
  std::cout << "\nassignment:";
  for (std::size_t n = 0; n < plan.assignment.size(); ++n)
    std::cout << ' ' << n << "->" << plan.assignment[n];
  std::cout << "\n\n" << plan.selection.to_table().to_ascii() << "\n";
  if (plan.selection.has_recommendation())
    std::cout << "suggested heuristic: " << plan.selection.suggestion
              << "\n";
  return 0;
}

int cmd_bound(const Args& args) {
  telemetry_begin(args);
  const auto loaded = load(args);
  const auto spec = parse_class(args.get("class", "general"));
  const auto detail =
      bounds::compute_bound_detail(loaded.instance, spec, bound_options(args));
  const auto& bound = detail.bound;
  std::cout << "class " << spec.name << ": ";
  if (!bound.achievable) {
    std::cout << "cannot meet the goal (max achievable QoS "
              << format_number(bound.max_achievable_qos * 100, 4) << "%)\n";
    telemetry_end(args);
    return 0;
  }
  std::cout << "lower bound " << format_number(bound.lower_bound, 1);
  if (bound.rounded_feasible)
    std::cout << ", feasible placement at "
              << format_number(bound.rounded_cost, 1) << " (gap "
              << format_number(bound.gap * 100, 1) << "%)";
  std::cout << " [" << bound.lp_rows << " rows, "
            << format_number(bound.solve_seconds, 1) << "s]\n";
  if (args.has("report")) {
    std::cout << "\nsensitivity report (duals on the QoS rows; shadow price "
                 "= d(cost)/d(tqos)):\n"
              << obs::to_string(obs::make_solve_report(detail));
  }
  telemetry_end(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "gen-example") return cmd_gen_example(args);
    if (args.command == "select") return cmd_select(args);
    if (args.command == "plan") return cmd_plan(args);
    if (args.command == "bound") return cmd_bound(args);
    if (args.command == "serve") return cmd_serve(args);
    std::cerr << "usage: wanplace_cli <gen-example|select|plan|bound|serve> "
                 "[--flag value ...]\n(see the header of tools/"
                 "wanplace_cli.cpp for details)\n";
    return args.command.empty() ? 1 : 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
