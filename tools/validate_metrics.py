#!/usr/bin/env python3
"""Validate a wanplace metrics export (Prometheus exposition or JSONL).

Usage: validate_metrics.py FILE [--format prom|jsonl]

The format is auto-detected when not forced: a first line starting with
'{' is the JSONL stream, anything else the Prometheus text exposition.

Prometheus checks (the subset write_prometheus emits): every non-comment
line is `name[{labels}] value` with a legal metric name and a float value
(+Inf/-Inf/NaN allowed), every sample's family was declared by a preceding
`# TYPE` line (summary samples may carry a quantile label and the
`_sum`/`_count` suffixes), and declared TYPE values are known.

JSONL checks: the first line is the stream meta record
{"type":"meta","stream":"wanplace-metrics","version":1}; `point` records
carry an integer index (strictly increasing across the stream), a string
kind, a boolean `rejected`, and numeric `values`/`seconds` maps; `metric`
records have the trace-schema metric shape, with p50/p90/p99 required on
histograms. Exits 1 with a message on the first violation.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
VALUE_RE = re.compile(
    r"^(?:[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN)$")
KNOWN_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def fail(lineno, message):
    print(f"validate_metrics: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def family_of(name, declared):
    """The declared family a sample belongs to (summaries export
    name{quantile=...}, name_sum, name_count, and our min/max gauges)."""
    if name in declared:
        return name
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


def check_prometheus(path):
    declared = {}
    samples = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        fail(lineno, "malformed # TYPE line")
                    if not NAME_RE.match(parts[2]):
                        fail(lineno, f"illegal metric name {parts[2]!r}")
                    if parts[3] not in KNOWN_TYPES:
                        fail(lineno, f"unknown metric type {parts[3]!r}")
                    declared[parts[2]] = parts[3]
                continue
            match = SAMPLE_RE.match(line)
            if not match:
                fail(lineno, f"malformed sample line: {line!r}")
            if not VALUE_RE.match(match.group("value")):
                fail(lineno, f"malformed sample value {match.group('value')!r}")
            name = match.group("name")
            family = family_of(name, declared)
            if family is None:
                fail(lineno, f"sample {name!r} has no preceding # TYPE")
            labels = match.group("labels")
            if labels and "quantile=" in labels and \
                    declared.get(family) != "summary":
                fail(lineno, f"quantile label on non-summary {family!r}")
            samples += 1
    if samples == 0:
        fail(0, "no samples in the exposition")
    print(f"ok: prometheus exposition, {len(declared)} families, "
          f"{samples} samples")


def is_number(value):
    return value is None or (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    )


def check_number_map(lineno, obj, key):
    values = obj.get(key)
    if not isinstance(values, dict):
        fail(lineno, f"point field {key!r} missing or not an object")
    for name, value in values.items():
        if not is_number(value):
            fail(lineno, f"point {key}[{name!r}] is not numeric")


def check_jsonl(path):
    meta = None
    last_index = None
    points = metrics = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                fail(lineno, "blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as error:
                fail(lineno, f"not valid JSON: {error}")
            if not isinstance(obj, dict):
                fail(lineno, "line is not a JSON object")
            kind = obj.get("type")
            if lineno == 1:
                if kind != "meta":
                    fail(lineno, "first line must be the meta record")
                if obj.get("stream") != "wanplace-metrics":
                    fail(lineno, f"unknown stream {obj.get('stream')!r}")
                if obj.get("version") != 1:
                    fail(lineno, f"unsupported version {obj.get('version')!r}")
                meta = obj
                continue
            if kind == "meta":
                fail(lineno, "duplicate meta record")
            elif kind == "point":
                index = obj.get("index")
                if not isinstance(index, int) or isinstance(index, bool) or \
                        index < 0:
                    fail(lineno, "point 'index' missing or not a "
                                 "non-negative int")
                if last_index is not None and index <= last_index:
                    fail(lineno, f"point index {index} not increasing "
                                 f"(previous {last_index})")
                last_index = index
                if not isinstance(obj.get("kind"), str):
                    fail(lineno, "point 'kind' missing or not a string")
                if not isinstance(obj.get("rejected"), bool):
                    fail(lineno, "point 'rejected' missing or not a bool")
                check_number_map(lineno, obj, "values")
                check_number_map(lineno, obj, "seconds")
                points += 1
            elif kind == "metric":
                if not isinstance(obj.get("name"), str):
                    fail(lineno, "metric 'name' missing or not a string")
                if obj.get("kind") not in ("counter", "gauge", "histogram"):
                    fail(lineno, f"unknown metric kind {obj.get('kind')!r}")
                count = obj.get("count")
                if not isinstance(count, int) or isinstance(count, bool) or \
                        count < 0:
                    fail(lineno, "metric 'count' missing or not a "
                                 "non-negative int")
                if "sum" not in obj or not is_number(obj["sum"]):
                    fail(lineno, "metric 'sum' missing or not numeric")
                if obj["kind"] == "histogram":
                    for key in ("min", "max", "p50", "p90", "p99"):
                        if key not in obj or not is_number(obj[key]):
                            fail(lineno, f"histogram field {key!r} missing "
                                         "or not numeric")
                metrics += 1
            else:
                fail(lineno, f"unknown record type {kind!r}")
    if meta is None:
        fail(0, "empty stream (no meta record)")
    print(f"ok: metrics jsonl, {points} points, {metrics} metrics")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--format", choices=("prom", "jsonl"))
    args = parser.parse_args()

    fmt = args.format
    if fmt is None:
        with open(args.file, encoding="utf-8") as handle:
            first = handle.readline()
        fmt = "jsonl" if first.lstrip().startswith("{") else "prom"
    if fmt == "prom":
        check_prometheus(args.file)
    else:
        check_jsonl(args.file)


if __name__ == "__main__":
    main()
